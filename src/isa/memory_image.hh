/**
 * @file
 * Sparse, paged 64-bit word memory used for both program images and
 * the functional executor's architectural memory state.
 */

#ifndef MCD_ISA_MEMORY_IMAGE_HH
#define MCD_ISA_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace mcd {

/**
 * Byte-addressed sparse memory with 8-byte word granularity.
 *
 * Pages of 4 KB are allocated lazily; unwritten memory reads as zero.
 * Accesses must be 8-byte aligned (the mini-ISA only has 8-byte
 * loads/stores; instruction fetch uses readWord32).
 */
class MemoryImage
{
  public:
    MemoryImage() = default;
    MemoryImage(MemoryImage &&) = default;
    MemoryImage &operator=(MemoryImage &&) = default;

    /** Deep copy (pages are owned uniquely). */
    MemoryImage(const MemoryImage &other) { *this = other; }

    MemoryImage &
    operator=(const MemoryImage &other)
    {
        if (this == &other)
            return *this;
        pages.clear();
        for (const auto &[key, p] : other.pages)
            pages.emplace(key, std::make_unique<Page>(*p));
        return *this;
    }

    /** Read the 64-bit word at an 8-byte-aligned byte address. */
    std::uint64_t
    readWord(std::uint64_t addr) const
    {
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        return (*p)[wordIndex(addr)];
    }

    /** Write the 64-bit word at an 8-byte-aligned byte address. */
    void
    writeWord(std::uint64_t addr, std::uint64_t value)
    {
        page(addr)[wordIndex(addr)] = value;
    }

    /** Read a 32-bit value at a 4-byte-aligned address (fetch). */
    std::uint32_t
    readWord32(std::uint64_t addr) const
    {
        std::uint64_t w = readWord(addr & ~7ULL);
        return (addr & 4) ? static_cast<std::uint32_t>(w >> 32)
                          : static_cast<std::uint32_t>(w);
    }

    /** Write a 32-bit value at a 4-byte-aligned address (loader). */
    void
    writeWord32(std::uint64_t addr, std::uint32_t value)
    {
        std::uint64_t w = readWord(addr & ~7ULL);
        if (addr & 4) {
            w = (w & 0x00000000ffffffffULL) |
                (static_cast<std::uint64_t>(value) << 32);
        } else {
            w = (w & 0xffffffff00000000ULL) | value;
        }
        writeWord(addr & ~7ULL, w);
    }

    /** Read a double stored at an 8-byte-aligned address. */
    double
    readDouble(std::uint64_t addr) const
    {
        std::uint64_t bits = readWord(addr);
        double d;
        static_assert(sizeof(d) == sizeof(bits));
        __builtin_memcpy(&d, &bits, sizeof(d));
        return d;
    }

    /** Write a double at an 8-byte-aligned address. */
    void
    writeDouble(std::uint64_t addr, double value)
    {
        std::uint64_t bits;
        __builtin_memcpy(&bits, &value, sizeof(bits));
        writeWord(addr, bits);
    }

    /** Number of allocated 4 KB pages. */
    std::size_t pageCount() const { return pages.size(); }

    /** Copy the contents of another image into this one. */
    void
    overlay(const MemoryImage &other)
    {
        for (const auto &[key, p] : other.pages) {
            Page &dst = *pages.try_emplace(
                key, std::make_unique<Page>()).first->second;
            for (std::size_t i = 0; i < p->size(); ++i) {
                if ((*p)[i])
                    dst[i] = (*p)[i];
            }
        }
    }

  private:
    static constexpr std::uint64_t pageShift = 12;
    static constexpr std::size_t wordsPerPage = 4096 / 8;

    using Page = std::array<std::uint64_t, wordsPerPage>;

    static std::size_t
    wordIndex(std::uint64_t addr)
    {
        return (addr >> 3) & (wordsPerPage - 1);
    }

    const Page *
    findPage(std::uint64_t addr) const
    {
        auto it = pages.find(addr >> pageShift);
        return it == pages.end() ? nullptr : it->second.get();
    }

    Page &
    page(std::uint64_t addr)
    {
        auto &slot = pages[addr >> pageShift];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages;
};

} // namespace mcd

#endif // MCD_ISA_MEMORY_IMAGE_HH
