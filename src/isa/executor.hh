/**
 * @file
 * Functional (architectural) executor for the mini-ISA.
 *
 * The timing model is oracle-driven in the SimpleScalar tradition: the
 * executor runs the program in order and hands the timing core a
 * stream of ExecResult records carrying everything timing needs —
 * branch outcomes and targets, effective addresses, and the decoded
 * instruction. Memory *values* never influence timing directly, but we
 * execute them faithfully so workloads are self-checking.
 */

#ifndef MCD_ISA_EXECUTOR_HH
#define MCD_ISA_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "isa/memory_image.hh"
#include "isa/program.hh"

namespace mcd {

/** One architecturally executed instruction, as seen by timing. */
struct ExecResult
{
    std::uint64_t seq = 0;      //!< dynamic instruction number (1-based)
    std::uint64_t pc = 0;
    Inst inst;
    std::uint64_t nextPc = 0;   //!< architecturally correct next PC
    bool taken = false;         //!< control transfer taken (branch/jump)
    std::uint64_t memAddr = 0;  //!< effective address for memory ops
    bool halted = false;        //!< this instruction was HALT
};

/**
 * Architectural state plus an in-order step() interface.
 */
class Executor
{
  public:
    explicit Executor(const Program &program);

    /** Execute the next instruction; undefined once halted(). */
    ExecResult step();

    bool halted() const { return isHalted; }
    std::uint64_t instsExecuted() const { return seq; }
    std::uint64_t pc() const { return curPc; }

    /** @name Architectural state inspection (used by tests/workloads)
     *  @{
     */
    std::uint64_t intReg(int r) const { return iregs[r]; }
    double fpReg(int r) const { return fregs[r]; }
    std::uint64_t readMem(std::uint64_t addr) const
    { return mem.readWord(addr); }
    double readMemDouble(std::uint64_t addr) const
    { return mem.readDouble(addr); }
    /** @} */

    /** @name State mutation (used by tests)
     *  @{
     */
    void setIntReg(int r, std::uint64_t v) { if (r) iregs[r] = v; }
    void setFpReg(int r, double v) { fregs[r] = v; }
    void writeMem(std::uint64_t addr, std::uint64_t v)
    { mem.writeWord(addr, v); }
    /** @} */

  private:
    const Program &prog;
    MemoryImage mem;
    std::array<std::uint64_t, numArchIntRegs> iregs{};
    std::array<double, numArchFpRegs> fregs{};
    std::uint64_t curPc;
    std::uint64_t seq = 0;
    bool isHalted = false;
};

} // namespace mcd

#endif // MCD_ISA_EXECUTOR_HH
