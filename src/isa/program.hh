/**
 * @file
 * A loaded mini-ISA program: encoded text image, initial data image,
 * and entry point.
 */

#ifndef MCD_ISA_PROGRAM_HH
#define MCD_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encoding.hh"
#include "isa/inst.hh"
#include "isa/memory_image.hh"

namespace mcd {

/** Default base address of the text segment. */
inline constexpr std::uint64_t defaultTextBase = 0x10000;

/** Default base address of the data segment. */
inline constexpr std::uint64_t defaultDataBase = 0x400000;

/** Default initial stack pointer (grows down). */
inline constexpr std::uint64_t defaultStackTop = 0x8000000;

/**
 * An executable program image.
 *
 * Text is stored both encoded (for the I-cache's address stream and
 * binary round-trip tests) and pre-decoded (for fast functional and
 * timing simulation).
 */
class Program
{
  public:
    Program(std::string name, std::uint64_t text_base,
            std::vector<std::uint32_t> text_words, MemoryImage data);

    const std::string &name() const { return progName; }
    std::uint64_t textBase() const { return base; }
    std::uint64_t entry() const { return base; }
    std::size_t textSize() const { return words.size(); }

    /** Highest valid instruction address + 4. */
    std::uint64_t textLimit() const { return base + 4 * words.size(); }

    /** True if @p pc addresses a valid instruction. */
    bool
    validPc(std::uint64_t pc) const
    {
        return pc >= base && pc < textLimit() && (pc & 3) == 0;
    }

    /** Encoded instruction word at @p pc. */
    std::uint32_t
    fetchWord(std::uint64_t pc) const
    {
        return words[(pc - base) / 4];
    }

    /** Pre-decoded instruction at @p pc. */
    const Inst &
    fetch(std::uint64_t pc) const
    {
        return decoded[(pc - base) / 4];
    }

    /** Initial data image (copied into the executor at reset). */
    const MemoryImage &initialData() const { return dataImage; }

  private:
    std::string progName;
    std::uint64_t base;
    std::vector<std::uint32_t> words;
    std::vector<Inst> decoded;
    MemoryImage dataImage;
};

} // namespace mcd

#endif // MCD_ISA_PROGRAM_HH
