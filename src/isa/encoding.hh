/**
 * @file
 * 32-bit binary encoding of the mini-ISA.
 *
 * Layout (bit 31 is the MSB):
 *   [31:26] opcode
 *   R-type:  [25:21] rd   [20:16] rs1  [15:11] rs2
 *   I-type:  [25:21] rd   [20:16] rs1  [15:0]  imm16 (signed)
 *   S-type:  [25:21] rs2  [20:16] rs1  [15:0]  imm16 (stores)
 *   B-type:  [25:21] rs1  [20:16] rs2  [15:0]  imm16 (branch disp, bytes)
 *   J-type:  [25:21] rd   [20:0]  imm21 (signed jump disp, bytes)
 *
 * The encoding exists so the text image is byte-addressable (the L1
 * I-cache operates on real addresses) and so programs round-trip
 * through a binary form for testing.
 */

#ifndef MCD_ISA_ENCODING_HH
#define MCD_ISA_ENCODING_HH

#include <cstdint>

#include "isa/inst.hh"

namespace mcd {

/** Size of one encoded instruction in bytes. */
inline constexpr std::uint64_t instBytes = 4;

/** Encode a decoded instruction into its 32-bit binary form. */
std::uint32_t encode(const Inst &inst);

/** Decode a 32-bit word into an instruction. */
Inst decode(std::uint32_t word);

} // namespace mcd

#endif // MCD_ISA_ENCODING_HH
