#include "clustering.hh"

#include <algorithm>
#include <cmath>

namespace mcd {

ClusterPhase::ClusterPhase(const ClusteringConfig &config)
    : cfg(config),
      dvfsParams(DvfsParams::forKind(config.model, config.dvfsTimeScale)),
      table(config.fmin, config.fmax, config.vmin, config.vmax,
            config.model == DvfsKind::Transmeta ? 32 : 320)
{
    // The candidate operating points: 32 for Transmeta, 320 for
    // XScale (paper Section 3.2).
    int points = table.numPoints();
    freqs.reserve(points);
    for (int i = 0; i < points; ++i)
        freqs.push_back(table.point(i).frequency);
}

Volt
ClusterPhase::voltageFor(Hertz f) const
{
    return table.voltageFor(f);
}

Tick
ClusterPhase::reconfigCharge() const
{
    // The Transmeta model loses the PLL re-lock window at every
    // frequency change; the XScale model executes through changes.
    return dvfsParams.pllRelock ? dvfsParams.relockMean : 0;
}

double
ClusterPhase::dilationAt(const DomainHistogram &h, Hertz f) const
{
    // Events assigned frequency fa > f take work * fmax * (1/f - 1/fa)
    // longer than the shaker scheduled. Dilations are assumed to
    // accumulate within a domain (the paper's approximation).
    double extra = 0.0;
    for (int b = 0; b < DomainHistogram::bins; ++b) {
        if (h.work[b] <= 0.0)
            continue;
        Hertz fa = histogramBinFreq(b, cfg.fmin, cfg.fmax);
        if (fa > f)
            extra += h.work[b] * cfg.fmax * (1.0 / f - 1.0 / fa);
    }
    return extra;
}

double
ClusterPhase::energyAt(const DomainHistogram &h, Hertz f,
                       Tick length) const
{
    double v = voltageFor(f) / cfg.vmax;
    return (h.total() +
            cfg.idlePowerFraction * static_cast<double>(length)) * v * v;
}

Hertz
ClusterPhase::minFeasibleFrequency(const DomainHistogram &h,
                                   Tick length) const
{
    // The PLL re-lock window only dilates execution to the extent the
    // domain actually had work to do: re-locking an idle domain costs
    // (almost) nothing.
    double utilization = std::min(
        1.0, h.total() / static_cast<double>(length));
    double budget = cfg.targetDilation * static_cast<double>(length) -
        static_cast<double>(reconfigCharge()) * utilization;
    if (budget <= 0.0)
        return cfg.fmax;
    for (Hertz f : freqs) {
        if (dilationAt(h, f) <= budget)
            return f;
    }
    return cfg.fmax;
}

Tick
ClusterPhase::transitionTime(Hertz from, Hertz to) const
{
    if (from == to || dvfsParams.kind == DvfsKind::None)
        return 0;
    double span = cfg.vmax - cfg.vmin;
    double dv = std::fabs(voltageFor(to) - voltageFor(from));
    int steps = static_cast<int>(
        std::ceil(dv / span * dvfsParams.stepsFullRange - 1e-9));
    Tick t = static_cast<Tick>(steps) * dvfsParams.stepTime;
    if (dvfsParams.pllRelock)
        t += dvfsParams.relockMean;
    return t;
}

Tick
ClusterPhase::leadTime(Hertz from, Hertz to) const
{
    if (to >= from)
        return transitionTime(from, to);
    // Down-transition: the frequency itself changes after the re-lock
    // (Transmeta) or immediately (XScale).
    return dvfsParams.pllRelock ? dvfsParams.relockMean : 0;
}

namespace {

/** Working segment during merging. */
struct Seg
{
    Tick start = 0;
    Tick end = 0;
    DomainHistogram hist;
    Hertz freq = 0.0;
};

DomainHistogram
mergeHist(const DomainHistogram &a, const DomainHistogram &b)
{
    DomainHistogram m;
    for (int i = 0; i < DomainHistogram::bins; ++i)
        m.work[i] = a.work[i] + b.work[i];
    return m;
}

} // namespace

ClusterResult
ClusterPhase::run(const std::vector<IntervalHistos> &intervals) const
{
    ClusterResult result;
    if (intervals.empty())
        return result;

    for (Domain d : scalableDomains) {
        int di = domainIndex(d);

        // Initial per-interval segments with their minimum feasible
        // frequencies. The integer domain absorbs the load/store
        // events (paper's special case: effective-address computation
        // must stay fast when memory activity is high).
        std::vector<Seg> segs;
        segs.reserve(intervals.size());
        for (const IntervalHistos &iv : intervals) {
            Seg s;
            s.start = iv.start;
            s.end = iv.end;
            s.hist = (d == Domain::Integer)
                ? mergeHist(iv.hist[di],
                            iv.hist[domainIndex(Domain::LoadStore)])
                : iv.hist[di];
            s.freq = minFeasibleFrequency(s.hist, s.end - s.start);
            segs.push_back(std::move(s));
        }

        // Recursive adjacent merging while energy-profitable.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
                const Seg &a = segs[i];
                const Seg &b = segs[i + 1];
                DomainHistogram m = mergeHist(a.hist, b.hist);
                Tick len = b.end - a.start;
                Hertz fm = minFeasibleFrequency(m, len);
                double eMerged = energyAt(m, fm, len);
                double eSplit =
                    energyAt(a.hist, a.freq, a.end - a.start) +
                    energyAt(b.hist, b.freq, b.end - b.start);
                // Merging also eliminates one reconfiguration; treat
                // equal-energy merges as profitable (consolidation).
                if (eMerged <= eSplit * (1.0 + 1e-9)) {
                    Seg s;
                    s.start = a.start;
                    s.end = b.end;
                    s.hist = std::move(m);
                    s.freq = fm;
                    segs[i] = std::move(s);
                    segs.erase(segs.begin() + i + 1);
                    changed = true;
                    --i;
                }
            }
        }

        // Lead times and feasibility: a reconfiguration must start
        // early enough that the target point is reached at the
        // segment boundary; swings that cannot fit are avoided.
        Hertz cur = cfg.fmax;           // profiling run starts at fmax
        Tick lastChange = 0;
        std::vector<PlanSegment> &plan = result.plans[di];
        for (const Seg &s : segs) {
            if (s.freq != cur) {
                Tick lead = leadTime(cur, s.freq);
                Tick begin = s.start > lead ? s.start - lead : 0;
                if (begin >= lastChange) {
                    result.schedule.add(begin, d, s.freq);
                    cur = s.freq;
                    lastChange = s.start;
                }
                // else: infeasible swing; keep running at `cur`.
            }
            if (!plan.empty() && plan.back().frequency == cur) {
                plan.back().end = s.end;
            } else {
                plan.push_back({s.start, s.end, cur});
            }
        }
    }

    result.schedule.finalize();
    return result;
}

} // namespace mcd
