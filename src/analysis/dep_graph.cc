#include "dep_graph.hh"

#include <algorithm>
#include <unordered_map>

namespace mcd {

bool
IntervalGraph::isAcyclic() const
{
    // Kahn's algorithm.
    std::vector<int> indeg(events.size(), 0);
    for (std::size_t i = 0; i < events.size(); ++i)
        for (const DagEdge &s : out[i])
            ++indeg[s.to];
    std::vector<std::int32_t> ready;
    for (std::size_t i = 0; i < events.size(); ++i)
        if (indeg[i] == 0)
            ready.push_back(static_cast<std::int32_t>(i));
    std::size_t seen = 0;
    while (!ready.empty()) {
        std::int32_t v = ready.back();
        ready.pop_back();
        ++seen;
        for (const DagEdge &s : out[v]) {
            if (--indeg[s.to] == 0)
                ready.push_back(s.to);
        }
    }
    return seen == events.size();
}

namespace {

struct InstEvents
{
    std::int32_t execEvent = -1;    //!< execute or addr-calc
    std::int32_t memEvent = -1;     //!< memory access (mem ops)
    bool isLoad = false;
};

} // namespace

std::vector<IntervalGraph>
buildIntervalGraphs(const std::vector<InstTrace> &trace,
                    const DepGraphConfig &cfg)
{
    std::vector<IntervalGraph> graphs;
    if (trace.empty())
        return graphs;

    const Tick len = cfg.intervalLength;
    // Dispatch times are (nearly) monotonic, so the last record bounds
    // the interval count well enough for a one-shot reservation.
    graphs.reserve(
        static_cast<std::size_t>(trace.back().dispatchTime / len) + 2);
    std::size_t pos = 0;

    while (pos < trace.size()) {
        // Interval of the first remaining instruction.
        Tick k = trace[pos].dispatchTime / len;
        IntervalGraph g;
        g.intervalStart = k * len;
        g.intervalEnd = (k + 1) * len;

        // Collect this interval's instructions.
        std::size_t first = pos;
        while (pos < trace.size() && trace[pos].dispatchTime / len == k)
            ++pos;

        std::unordered_map<std::uint64_t, InstEvents> bySeq;
        bySeq.reserve(pos - first);
        // Worst case two events (exec + mem) per instruction.
        g.events.reserve(2 * (pos - first));

        auto addEvent = [&](Domain d, Tick s, Tick e,
                            FuClass fu) -> std::int32_t {
            DagEvent ev;
            ev.domain = d;
            ev.start = s;
            ev.end = e > s ? e : s + 1;
            ev.origDuration = ev.end - ev.start;
            ev.floorStart = ev.start;   // patched to dispatch below
            ev.power = cfg.domainPower[domainIndex(d)];
            ev.fu = fu;
            g.events.push_back(ev);
            return static_cast<std::int32_t>(g.events.size() - 1);
        };

        for (std::size_t i = first; i < pos; ++i) {
            const InstTrace &t = trace[i];
            if (t.op == Opcode::NOP || t.op == Opcode::HALT)
                continue;
            InstEvents ie;
            Tick skew = cfg.completionSkew;
            if (t.isMem()) {
                ie.execEvent = addEvent(Domain::Integer, t.issueTime,
                                        t.execDone + skew,
                                        FuClass::IntAlu);
                ie.memEvent = addEvent(Domain::LoadStore, t.memIssue,
                                       t.memDone + skew,
                                       FuClass::MemPort);
                DagEvent &me = g.events[ie.memEvent];
                me.fixedPortion =
                    std::min(t.memFixed, me.origDuration - 1);
                ie.isLoad = t.isLoadOp();
            } else {
                ie.execEvent = addEvent(execDomain(t.op), t.issueTime,
                                        t.execDone + skew,
                                        fuClass(t.op));
            }
            // Events cannot be rescheduled before their dispatch: the
            // front end is pinned at full speed (paper Section 3.2).
            g.events[ie.execEvent].floorStart = t.dispatchTime;
            // ROB occupancy: this instruction must complete before the
            // (fixed-speed) front end dispatches entry i + robSize
            // (derated by the occupancy margin).
            std::size_t robPeer = i + static_cast<std::size_t>(
                cfg.robSize * cfg.occupancyMargin);
            if (robPeer < trace.size()) {
                Tick ceil = trace[robPeer].dispatchTime;
                g.events[ie.execEvent].endCeiling = ceil;
                if (ie.memEvent >= 0)
                    g.events[ie.memEvent].endCeiling = ceil;
            }
            bySeq.emplace(t.seq, ie);
        }

        // A partial final interval must not pretend to own a full
        // interval's dilation budget: clamp its end to the actual end
        // of observed work.
        Tick maxEnd = g.intervalStart + 1;
        for (const DagEvent &ev : g.events)
            maxEnd = std::max(maxEnd, ev.end);
        g.intervalEnd = std::min(g.intervalEnd, maxEnd);

        g.out.resize(g.events.size());
        g.in.resize(g.events.size());

        // Data and intra-instruction dependences.
        auto resultEvent = [&](std::uint64_t seq) -> std::int32_t {
            auto it = bySeq.find(seq);
            if (it == bySeq.end())
                return -1;  // producer outside the interval
            const InstEvents &p = it->second;
            return p.isLoad ? p.memEvent : p.execEvent;
        };

        // Control dependences: a mispredicted branch stalls fetch, so
        // every younger instruction's first event depends on the
        // branch's execute event (until the next such barrier).
        std::int32_t controlBarrier = -1;

        for (std::size_t i = first; i < pos; ++i) {
            const InstTrace &t = trace[i];
            auto it = bySeq.find(t.seq);
            if (it == bySeq.end())
                continue;
            const InstEvents &ie = it->second;
            if (controlBarrier >= 0) {
                // The pipeline-refill gap after a misprediction is
                // front-end time; carry it as a fixed lag so the
                // shaker cannot treat it as slack.
                std::int64_t gap =
                    static_cast<std::int64_t>(
                        g.events[ie.execEvent].start) -
                    static_cast<std::int64_t>(
                        g.events[controlBarrier].end);
                g.addEdge(controlBarrier, ie.execEvent, gap);
            }
            if (t.mispredicted)
                controlBarrier = ie.execEvent;
            if (t.dep1)
                g.addEdge(resultEvent(t.dep1), ie.execEvent);
            if (t.dep2) {
                // For stores, dep2 is the store data, consumed by the
                // memory-access event; otherwise it feeds execute.
                std::int32_t target =
                    (t.isMem() && !t.isLoadOp() && ie.memEvent >= 0)
                    ? ie.memEvent : ie.execEvent;
                g.addEdge(resultEvent(t.dep2), target);
            }
            if (ie.memEvent >= 0)
                g.addEdge(ie.execEvent, ie.memEvent);
        }

        // Functional dependences (shared units) and structural
        // dependences (finite queues), per domain, in start order.
        std::vector<std::int32_t> byDomain[numDomains];
        for (auto &v : byDomain)
            v.reserve(g.events.size());
        for (std::size_t e = 0; e < g.events.size(); ++e)
            byDomain[domainIndex(g.events[e].domain)].push_back(
                static_cast<std::int32_t>(e));
        for (int d = 0; d < numDomains; ++d) {
            auto &v = byDomain[d];
            std::stable_sort(v.begin(), v.end(),
                             [&](std::int32_t a, std::int32_t b) {
                                 return g.events[a].start <
                                     g.events[b].start;
                             });
        }

        auto queueCap = [&](Domain d) {
            switch (d) {
              case Domain::Integer: return cfg.intIssueQueueSize;
              case Domain::FloatingPoint: return cfg.fpIssueQueueSize;
              case Domain::LoadStore: return cfg.lsqSize;
              default: return 0;
            }
        };
        auto deratedCap = [&](Domain d) {
            return static_cast<int>(
                queueCap(d) * cfg.occupancyMargin);
        };

        for (int d = 1; d < numDomains; ++d) {
            const auto &v = byDomain[d];
            int cap = queueCap(static_cast<Domain>(d));
            for (std::size_t i2 = 0; i2 < v.size(); ++i2) {
                if (cap > 0 && i2 >= static_cast<std::size_t>(cap))
                    g.addEdge(v[i2 - cap], v[i2]);
                // Queue occupancy: entry i2 must issue before entry
                // i2 + margin*cap can be dispatched into the queue.
                int dcap = deratedCap(static_cast<Domain>(d));
                if (dcap > 0 &&
                    i2 + dcap < v.size()) {
                    DagEvent &ev = g.events[v[i2]];
                    ev.startCeiling = std::min(
                        ev.startCeiling,
                        g.events[v[i2 + dcap]].floorStart);
                }
            }
            // Same-FU serialization.
            std::unordered_map<int, std::vector<std::int32_t>> byFu;
            for (std::int32_t e : v)
                byFu[static_cast<int>(g.events[e].fu)].push_back(e);
            for (auto &[fu, list] : byFu) {
                int units = cfg.fuCount[fu];
                if (units <= 0)
                    continue;
                for (std::size_t i2 = units; i2 < list.size(); ++i2)
                    g.addEdge(list[i2 - units], list[i2]);
            }
        }

        graphs.push_back(std::move(g));
    }
    return graphs;
}

} // namespace mcd
