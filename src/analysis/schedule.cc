#include "schedule.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace mcd {

void
ReconfigSchedule::finalize()
{
    std::stable_sort(entries.begin(), entries.end(),
                     [](const ReconfigEntry &a, const ReconfigEntry &b) {
                         return a.when < b.when;
                     });
}

std::size_t
ReconfigSchedule::countFor(Domain d) const
{
    std::size_t n = 0;
    for (const auto &e : entries) {
        if (e.domain == d)
            ++n;
    }
    return n;
}

std::string
ReconfigSchedule::toText() const
{
    std::string out;
    char buf[96];
    for (const auto &e : entries) {
        std::snprintf(buf, sizeof(buf), "%llu %s %.0f\n",
                      static_cast<unsigned long long>(e.when),
                      domainShortName(e.domain), e.frequency);
        out += buf;
    }
    return out;
}

ReconfigSchedule
ReconfigSchedule::fromText(const std::string &text)
{
    ReconfigSchedule s;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        unsigned long long when;
        std::string dom;
        double freq;
        if (!(ls >> when >> dom >> freq))
            fatal("bad schedule line: " + line);
        Domain d;
        if (dom == "FE")
            d = Domain::FrontEnd;
        else if (dom == "INT")
            d = Domain::Integer;
        else if (dom == "FP")
            d = Domain::FloatingPoint;
        else if (dom == "LS")
            d = Domain::LoadStore;
        else
            fatal("bad schedule domain: " + dom);
        s.add(static_cast<Tick>(when), d, freq);
    }
    s.finalize();
    return s;
}

} // namespace mcd
