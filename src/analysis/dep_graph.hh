/**
 * @file
 * The dependence DAG over primitive events (paper Section 3.2).
 *
 * For each 50 K-cycle interval of the profiling trace we materialize
 * the back-end events (execute / address-calc / memory-access) with
 * their observed start and end times, connected by:
 *
 *  - data dependences (register producers -> consumers, address-calc
 *    -> memory-access, load memory-access -> dependent execute);
 *  - functional dependences through shared hardware units (event k
 *    depends on event k - numUnits of the same FU class); and
 *  - structural dependences through finite queues (event k depends on
 *    event k - queueSize in the same domain).
 *
 * Front-end events are not scalable (the front end is pinned at
 * 1 GHz, paper Section 3.2) and enter only as fixed anchors via each
 * event's dispatch time.
 */

#ifndef MCD_ANALYSIS_DEP_GRAPH_HH
#define MCD_ANALYSIS_DEP_GRAPH_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace mcd {

/** One scalable event in the DAG. */
struct DagEvent
{
    Domain domain = Domain::Integer;
    Tick start = 0;         //!< observed start (may move later/earlier)
    Tick end = 0;           //!< observed end
    Tick origDuration = 0;  //!< duration before any stretching
    /** Portion of the duration owned by main memory: stretching and
     *  frequency scaling apply only to duration - fixedPortion. */
    Tick fixedPortion = 0;
    Tick floorStart = 0;    //!< dispatch anchor: cannot start earlier
    /** Structural ceilings: deferring this event further would stall
     *  the (fixed-speed) front end through ROB / issue-queue
     *  occupancy, so the shaker may not push it past these. */
    Tick startCeiling = ~Tick(0);
    Tick endCeiling = ~Tick(0);
    double stretch = 1.0;   //!< current stretch factor (1..maxStretch)
    double power = 0.0;     //!< current power factor
    FuClass fu = FuClass::None;
};

/** A dependence edge endpoint with a fixed latency (lag). */
struct DagEdge
{
    std::int32_t to = -1;   //!< event index (successor or predecessor)
    std::int32_t lag = 0;   //!< fixed picoseconds between the events
};

/**
 * The per-interval DAG: events plus in/out adjacency.
 */
class IntervalGraph
{
  public:
    Tick intervalStart = 0;
    Tick intervalEnd = 0;

    std::vector<DagEvent> events;
    std::vector<std::vector<DagEdge>> out;      //!< successors
    std::vector<std::vector<DagEdge>> in;       //!< predecessors

    std::size_t size() const { return events.size(); }

    /**
     * Add an edge producer -> consumer (ignores self/negative).
     *
     * @param lag fixed latency the edge must preserve: the successor
     *        cannot start before producer end + lag. Used for
     *        pipeline-refill delays after mispredictions, which are
     *        front-end-bound and therefore not stretchable slack.
     */
    void
    addEdge(std::int32_t from, std::int32_t to, std::int64_t lag = 0)
    {
        if (from < 0 || to < 0 || from == to)
            return;
        if (lag < 0)
            lag = 0;
        auto l32 = static_cast<std::int32_t>(
            std::min<std::int64_t>(lag, 0x7fffffff));
        out[from].push_back({to, l32});
        in[to].push_back({from, l32});
    }

    /** Verify acyclicity (test hook; O(V+E)). */
    bool isAcyclic() const;
};

/** Configuration for DAG construction. */
struct DepGraphConfig
{
    Tick intervalLength = 50'000'000;   //!< 50K cycles at 1 GHz, in ps
    int intIssueQueueSize = 20;
    int fpIssueQueueSize = 15;
    int lsqSize = 64;
    int robSize = 80;
    /**
     * The simulator encodes completion times half a clock period
     * early so jittered edge comparisons are robust (see
     * cpu/pipeline.cc); at the 1 GHz profiling frequency the true
     * result-latch time is this much later than the recorded one.
     */
    Tick completionSkew = 500;
    /**
     * Safety margin on the occupancy ceilings: the shaker may consume
     * only this fraction of each queue's deferral headroom, so the
     * rescheduled world keeps slack against jitter and
     * synchronization quantization.
     */
    double occupancyMargin = 0.5;
    int fuCount[6] = {0, 4, 1, 2, 1, 2};    //!< indexed by FuClass
    /** Relative per-time power of each domain's events. */
    double domainPower[numDomains] = {0.8, 1.0, 1.15, 1.05};
};

/**
 * Slice a trace into intervals and build one DAG per interval.
 */
std::vector<IntervalGraph>
buildIntervalGraphs(const std::vector<InstTrace> &trace,
                    const DepGraphConfig &cfg);

} // namespace mcd

#endif // MCD_ANALYSIS_DEP_GRAPH_HH
