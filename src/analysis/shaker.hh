/**
 * @file
 * The shaker algorithm (paper Section 3.2): distribute schedule slack
 * onto high-power events by stretching them (as if run at a lower
 * frequency), alternating backward and forward passes over the
 * interval DAG with a decaying power threshold, until all slack is
 * consumed or every event adjacent to slack has been scaled to one
 * quarter of its original frequency.
 */

#ifndef MCD_ANALYSIS_SHAKER_HH
#define MCD_ANALYSIS_SHAKER_HH

#include <array>
#include <vector>

#include "analysis/dep_graph.hh"
#include "common/types.hh"

namespace mcd {

/** Shaker tuning parameters. */
struct ShakerConfig
{
    double maxStretch = 4.0;        //!< 1/4 of original frequency
    double thresholdDecay = 0.9;    //!< per direction reversal
    int maxPasses = 40;             //!< backward+forward pairs
    double initialThresholdFactor = 0.99; //!< of max event power
};

/**
 * Per-domain frequency histogram produced from a shaken interval.
 *
 * Bin b (of @c bins) covers frequencies around
 * fMin + (b + 0.5) * (fMax - fMin) / bins; each event contributes its
 * original duration (work at full speed, in picoseconds) to the bin
 * of its assigned frequency fMax / stretch.
 */
struct DomainHistogram
{
    static constexpr int bins = 320;    //!< XScale step count (paper)

    std::array<double, bins> work{};    //!< ps of full-speed work

    double
    total() const
    {
        double t = 0.0;
        for (double w : work)
            t += w;
        return t;
    }
};

/** Result of shaking one interval. */
struct ShakeResult
{
    std::array<DomainHistogram, numDomains> histogram;
    int passesRun = 0;
    double slackConsumed = 0.0;     //!< ps of slack absorbed by scaling
};

/**
 * Run the shaker on one interval graph (mutates event times,
 * stretches, and power factors) and build the histograms.
 *
 * @param fmax the maximum (and profiling-run) frequency
 * @param fmin the minimum scalable frequency (stretch ceiling)
 */
ShakeResult shake(IntervalGraph &g, const ShakerConfig &cfg,
                  Hertz fmax, Hertz fmin);

/** Map a frequency to its histogram bin. */
int histogramBin(Hertz f, Hertz fmin, Hertz fmax);

/** Center frequency of a histogram bin. */
Hertz histogramBinFreq(int bin, Hertz fmin, Hertz fmax);

} // namespace mcd

#endif // MCD_ANALYSIS_SHAKER_HH
