#include "analyzer.hh"

namespace mcd {

AnalyzerConfig
OfflineAnalyzer::configFor(double target_dilation, DvfsKind model,
                           double dvfs_time_scale)
{
    AnalyzerConfig c;
    c.clustering.targetDilation = target_dilation;
    c.clustering.model = model;
    c.clustering.dvfsTimeScale = dvfs_time_scale;
    return c;
}

AnalysisResult
OfflineAnalyzer::analyze(const std::vector<InstTrace> &trace) const
{
    AnalysisResult result;

    std::vector<IntervalGraph> graphs =
        buildIntervalGraphs(trace, config.graph);
    result.intervals = graphs.size();

    std::vector<IntervalHistos> histos;
    histos.reserve(graphs.size());
    for (IntervalGraph &g : graphs) {
        result.eventsTotal += g.size();
        ShakeResult sr = shake(g, config.shaker,
                               config.clustering.fmax,
                               config.clustering.fmin);
        result.slackConsumed += sr.slackConsumed;
        IntervalHistos ih;
        ih.start = g.intervalStart;
        ih.end = g.intervalEnd;
        ih.hist = sr.histogram;
        histos.push_back(std::move(ih));
    }

    ClusterPhase cluster(config.clustering);
    ClusterResult cr = cluster.run(histos);
    result.schedule = std::move(cr.schedule);
    result.plans = std::move(cr.plans);
    return result;
}

} // namespace mcd
