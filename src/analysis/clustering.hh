/**
 * @file
 * The clustering phase of the offline tool (paper Section 3.2):
 * choose, per domain and interval, the minimum operating frequency
 * that keeps estimated dilation within the performance target; merge
 * adjacent intervals while energy-profitable (accounting for
 * reconfiguration cost under the Transmeta model); compute transition
 * lead times; drop infeasible reconfigurations; emit the schedule.
 */

#ifndef MCD_ANALYSIS_CLUSTERING_HH
#define MCD_ANALYSIS_CLUSTERING_HH

#include <array>
#include <vector>

#include "analysis/schedule.hh"
#include "analysis/shaker.hh"
#include "clock/dvfs.hh"
#include "clock/operating_points.hh"
#include "common/types.hh"

namespace mcd {

/** Clustering configuration. */
struct ClusteringConfig
{
    double targetDilation = 0.05;   //!< d: allowed fractional slowdown
    DvfsKind model = DvfsKind::XScale;
    double dvfsTimeScale = 1.0;
    Hertz fmax = 1e9;
    Hertz fmin = 250e6;
    Volt vmax = 1.2;
    Volt vmin = 0.65;

    /**
     * Idle power of a domain relative to the event-power density used
     * for histogram work, per unit time: a segment's energy is
     * (work + idlePowerFraction * length) * (V/Vmax)^2. Keeps the
     * merging phase honest about what an idle interval costs when
     * merged into a high-frequency segment.
     */
    double idlePowerFraction = 0.30;
};

/** Shaken histograms for one interval. */
struct IntervalHistos
{
    Tick start = 0;
    Tick end = 0;
    std::array<DomainHistogram, numDomains> hist;
};

/** One constant-frequency stretch of a domain's plan. */
struct PlanSegment
{
    Tick start = 0;
    Tick end = 0;
    Hertz frequency = 0.0;
};

/** The per-domain frequency plan plus the flattened schedule. */
struct ClusterResult
{
    ReconfigSchedule schedule;
    std::array<std::vector<PlanSegment>, numDomains> plans;
};

/**
 * The clustering engine.
 */
class ClusterPhase
{
  public:
    explicit ClusterPhase(const ClusteringConfig &cfg);

    /** Run the full phase over the intervals of one profiling run. */
    ClusterResult run(const std::vector<IntervalHistos> &intervals) const;

    /** @name Exposed pieces (unit-tested directly)
     *  @{
     */
    /** Extra time needed to run the histogram's work at @p f. */
    double dilationAt(const DomainHistogram &h, Hertz f) const;

    /** Relative energy of the histogram's work (plus idle power over
     *  @p length) at @p f. */
    double energyAt(const DomainHistogram &h, Hertz f,
                    Tick length = 0) const;

    /**
     * Slowest candidate frequency whose dilation (plus the model's
     * per-boundary reconfiguration charge) stays within the target
     * for an interval of the given length.
     */
    Hertz minFeasibleFrequency(const DomainHistogram &h,
                               Tick length) const;

    /** Estimated wall time of a frequency transition. */
    Tick transitionTime(Hertz from, Hertz to) const;

    /**
     * How early a transition must be initiated so the domain runs at
     * @p to when the segment starts. Downward changes apply as soon
     * as the PLL re-locks (the voltage trails down in the
     * background); upward changes must finish the voltage ramp first.
     */
    Tick leadTime(Hertz from, Hertz to) const;

    /** Candidate operating frequencies (32 Transmeta / 320 XScale). */
    const std::vector<Hertz> &candidates() const { return freqs; }
    /** @} */

  private:
    Volt voltageFor(Hertz f) const;
    Tick reconfigCharge() const;

    ClusteringConfig cfg;
    std::vector<Hertz> freqs;       //!< ascending candidate points
    DvfsParams dvfsParams;
    DvfsTable table;
};

} // namespace mcd

#endif // MCD_ANALYSIS_CLUSTERING_HH
