#include "shaker.hh"

#include <algorithm>

namespace mcd {

int
histogramBin(Hertz f, Hertz fmin, Hertz fmax)
{
    double t = (f - fmin) / (fmax - fmin);
    int b = static_cast<int>(t * DomainHistogram::bins);
    if (b < 0)
        b = 0;
    if (b >= DomainHistogram::bins)
        b = DomainHistogram::bins - 1;
    return b;
}

Hertz
histogramBinFreq(int bin, Hertz fmin, Hertz fmax)
{
    return fmin + (bin + 0.5) * (fmax - fmin) / DomainHistogram::bins;
}

namespace {

/** Slack between an event's end and its earliest successor start
 *  (bounded by the interval end). */
double
outSlack(const IntervalGraph &g, std::int32_t e)
{
    const DagEvent &ev = g.events[e];
    Tick bound = std::min(g.intervalEnd, ev.endCeiling);
    for (const DagEdge &s : g.out[e]) {
        Tick limit = g.events[s.to].start;
        limit = limit > static_cast<Tick>(s.lag)
            ? limit - static_cast<Tick>(s.lag) : 0;
        bound = std::min(bound, limit);
    }
    if (bound <= ev.end)
        return 0.0;
    return static_cast<double>(bound - ev.end);
}

/** Slack between an event's start and its latest predecessor end
 *  (bounded by the interval start). */
double
inSlack(const IntervalGraph &g, std::int32_t e)
{
    const DagEvent &ev = g.events[e];
    Tick bound = std::max(g.intervalStart, ev.floorStart);
    for (const DagEdge &p : g.in[e])
        bound = std::max(bound,
                         g.events[p.to].end + static_cast<Tick>(p.lag));
    if (bound >= ev.start)
        return 0.0;
    return static_cast<double>(ev.start - bound);
}

} // namespace

ShakeResult
shake(IntervalGraph &g, const ShakerConfig &cfg, Hertz fmax, Hertz fmin)
{
    ShakeResult result;
    if (g.events.empty())
        return result;

    const double maxStretch = std::min(cfg.maxStretch, fmax / fmin);

    // Base (unstretched) power factors for threshold bookkeeping.
    std::vector<double> basePower(g.size());
    double maxPower = 0.0;
    double minPower = 1e300;
    for (std::size_t i = 0; i < g.size(); ++i) {
        basePower[i] = g.events[i].power;
        maxPower = std::max(maxPower, basePower[i]);
        minPower = std::min(minPower, basePower[i]);
    }
    double threshold = maxPower * cfg.initialThresholdFactor;
    const double thresholdFloor =
        minPower / (maxStretch * maxStretch) * 0.5;

    std::vector<std::int32_t> order(g.size());
    for (std::size_t i = 0; i < g.size(); ++i)
        order[i] = static_cast<std::int32_t>(i);

    for (int pass = 0; pass < cfg.maxPasses; ++pass) {
        bool scaled = false;

        // Backward pass: latest-ending events first; slack sits on
        // outgoing edges and migrates to incoming ones.
        std::stable_sort(order.begin(), order.end(),
                         [&](std::int32_t a, std::int32_t b) {
                             return g.events[a].end > g.events[b].end;
                         });
        for (std::int32_t e : order) {
            DagEvent &ev = g.events[e];
            double slack = outSlack(g, e);
            if (slack <= 0.0)
                continue;
            if (ev.power >= threshold && ev.stretch < maxStretch) {
                double scalable = static_cast<double>(
                    ev.origDuration - ev.fixedPortion);
                double maxAdd = scalable * (maxStretch - ev.stretch);
                double add = std::min(slack, maxAdd);
                ev.end += static_cast<Tick>(add);
                ev.stretch = (static_cast<double>(ev.end - ev.start) -
                              static_cast<double>(ev.fixedPortion)) /
                    scalable;
                ev.power = basePower[e] / (ev.stretch * ev.stretch);
                slack -= add;
                result.slackConsumed += add;
                scaled = true;
            }
            if (slack > 0.0) {
                // Move the event later, handing slack to predecessors
                // (bounded by the issue-queue occupancy ceiling).
                Tick shift = static_cast<Tick>(slack);
                if (ev.startCeiling > ev.start) {
                    shift = std::min(shift, ev.startCeiling - ev.start);
                } else {
                    shift = 0;
                }
                ev.start += shift;
                ev.end += shift;
            }
        }
        threshold *= cfg.thresholdDecay;

        // Forward pass: earliest-starting events first; slack sits on
        // incoming edges and migrates to outgoing ones.
        std::stable_sort(order.begin(), order.end(),
                         [&](std::int32_t a, std::int32_t b) {
                             return g.events[a].start < g.events[b].start;
                         });
        for (std::int32_t e : order) {
            DagEvent &ev = g.events[e];
            double slack = inSlack(g, e);
            if (slack <= 0.0)
                continue;
            if (ev.power >= threshold && ev.stretch < maxStretch) {
                double scalable = static_cast<double>(
                    ev.origDuration - ev.fixedPortion);
                double maxAdd = scalable * (maxStretch - ev.stretch);
                double add = std::min(slack, maxAdd);
                ev.start -= static_cast<Tick>(add);
                ev.stretch = (static_cast<double>(ev.end - ev.start) -
                              static_cast<double>(ev.fixedPortion)) /
                    scalable;
                ev.power = basePower[e] / (ev.stretch * ev.stretch);
                slack -= add;
                result.slackConsumed += add;
                scaled = true;
            }
            if (slack > 0.0) {
                Tick shift = static_cast<Tick>(slack);
                ev.start -= shift;
                ev.end -= shift;
            }
        }
        threshold *= cfg.thresholdDecay;
        result.passesRun = pass + 1;

        if (!scaled && threshold < thresholdFloor)
            break;
    }

    // Build the per-domain frequency histograms: each event's work
    // (original full-speed duration) lands in the bin of its assigned
    // frequency fmax / stretch.
    for (const DagEvent &ev : g.events) {
        Hertz f = fmax / ev.stretch;
        int b = histogramBin(f, fmin, fmax);
        // Only the on-chip (scalable) portion of the event is work
        // governed by the domain clock.
        result.histogram[domainIndex(ev.domain)].work[b] +=
            static_cast<double>(ev.origDuration - ev.fixedPortion);
    }
    return result;
}

} // namespace mcd
