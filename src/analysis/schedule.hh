/**
 * @file
 * The reconfiguration schedule: the offline tool's output (the "log
 * file" of paper Section 3.2) listing the times at which each domain
 * should request a new frequency/voltage, consumed by the simulator
 * during the second, dynamic-scaling run.
 */

#ifndef MCD_ANALYSIS_SCHEDULE_HH
#define MCD_ANALYSIS_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mcd {

/** One scheduled reconfiguration request. */
struct ReconfigEntry
{
    Tick when = 0;          //!< time to *initiate* the change
    Domain domain = Domain::Integer;
    Hertz frequency = 0.0;  //!< target operating frequency
};

/**
 * A time-sorted reconfiguration schedule.
 */
class ReconfigSchedule
{
  public:
    void
    add(Tick when, Domain d, Hertz f)
    {
        entries.push_back({when, d, f});
    }

    /** Sort by time (stable w.r.t. domain order). */
    void finalize();

    const std::vector<ReconfigEntry> &all() const { return entries; }
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Number of entries for one domain. */
    std::size_t countFor(Domain d) const;

    /** Serialize to the paper-style log text (one line per entry). */
    std::string toText() const;

    /** Parse the toText() format. Throws FatalError on bad input. */
    static ReconfigSchedule fromText(const std::string &text);

  private:
    std::vector<ReconfigEntry> entries;
};

} // namespace mcd

#endif // MCD_ANALYSIS_SCHEDULE_HH
