/**
 * @file
 * The complete offline reconfiguration tool: trace -> per-interval
 * dependence DAGs -> shaker -> histograms -> clustering -> schedule
 * (paper Section 3.2). The schedule is then fed to a second, dynamic
 * simulation run.
 */

#ifndef MCD_ANALYSIS_ANALYZER_HH
#define MCD_ANALYSIS_ANALYZER_HH

#include <vector>

#include "analysis/clustering.hh"
#include "analysis/dep_graph.hh"
#include "analysis/schedule.hh"
#include "analysis/shaker.hh"
#include "trace/trace.hh"

namespace mcd {

/** Combined configuration for the offline tool. */
struct AnalyzerConfig
{
    DepGraphConfig graph;
    ShakerConfig shaker;
    ClusteringConfig clustering;
};

/** Everything the offline tool produced (schedule + diagnostics). */
struct AnalysisResult
{
    ReconfigSchedule schedule;
    std::array<std::vector<PlanSegment>, numDomains> plans;
    std::size_t intervals = 0;
    std::size_t eventsTotal = 0;
    double slackConsumed = 0.0;
};

/**
 * The offline analyzer façade.
 */
class OfflineAnalyzer
{
  public:
    explicit OfflineAnalyzer(AnalyzerConfig cfg) : config(std::move(cfg))
    {}

    /** Build the default configuration for a dilation target. */
    static AnalyzerConfig
    configFor(double target_dilation, DvfsKind model,
              double dvfs_time_scale = 1.0);

    /** Run the full analysis over a profiling trace. */
    AnalysisResult analyze(const std::vector<InstTrace> &trace) const;

    const AnalyzerConfig &cfg() const { return config; }

  private:
    AnalyzerConfig config;
};

} // namespace mcd

#endif // MCD_ANALYSIS_ANALYZER_HH
