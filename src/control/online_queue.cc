#include "online_queue.hh"

#include <algorithm>

namespace mcd {

OnlineQueueController::OnlineQueueController(
    const OnlineQueueParams &params, const DvfsTable &table_,
    std::uint64_t seed_)
    : prm(params), table(table_), seed(seed_)
{
    level.fill(-1);
}

void
OnlineQueueController::observe(const DomainStats &stats, Tick)
{
    if (stats.domain == Domain::FrontEnd && !prm.scaleFrontEnd)
        return;

    int di = domainIndex(stats.domain);
    double u = stats.meanOccupancy();

    if (!seen[di]) {
        // First observation: latch the operating point the domain
        // started at; the law needs a previous interval to compare to.
        seen[di] = true;
        level[di] = table.indexNearest(stats.frequency);
        prevOcc[di] = u;
        return;
    }

    int top = table.numPoints() - 1;
    int next = level[di];
    if (u >= prm.highWater) {
        next = top;
    } else {
        double du = u - prevOcc[di];
        if (du > prm.attackThreshold)
            next += prm.attackPoints;
        else if (du < -prm.attackThreshold)
            next -= prm.attackPoints;
        else if (u <= prm.idleWater)
            next -= prm.idleDecayPoints;
        else if (u <= prm.holdWater)
            next -= prm.decayPoints;
        // else: settled — the queue is usefully full but not backed
        // up, so the current operating point is about right.
        next = std::clamp(next, 0, top);
    }
    prevOcc[di] = u;

    if (next != level[di]) {
        level[di] = next;
        request(stats.domain, table.point(next).frequency);
    }
}

} // namespace mcd
