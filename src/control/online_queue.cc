#include "online_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcd {

OnlineQueueController::OnlineQueueController(
    const OnlineQueueParams &params, const DvfsTable &table_,
    std::uint64_t seed_)
    : prm(params), table(table_), seed(seed_)
{
    // Out-of-range tuning silently degenerates the control law (a
    // zero interval means the controller never fires; inverted water
    // marks make decay unreachable) — reject it up front.
    if (prm.interval == 0)
        fatal("OnlineQueueParams: interval must be > 0");
    if (!(prm.attackThreshold > 0.0 && prm.attackThreshold < 1.0))
        fatal("OnlineQueueParams: attackThreshold must lie in (0, 1)");
    if (!(prm.idleWater < prm.holdWater && prm.holdWater < prm.highWater))
        fatal("OnlineQueueParams: water marks must satisfy "
              "idleWater < holdWater < highWater");
    if (prm.attackPoints < 1 || prm.decayPoints < 1 ||
        prm.idleDecayPoints < 1) {
        fatal("OnlineQueueParams: attackPoints, decayPoints and "
              "idleDecayPoints must all be >= 1");
    }
    level.fill(-1);
}

void
OnlineQueueController::observe(const DomainStats &stats, Tick)
{
    if (stats.domain == Domain::FrontEnd && !prm.scaleFrontEnd)
        return;

    int di = domainIndex(stats.domain);
    double u = stats.meanOccupancy();

    if (!seen[di]) {
        // First observation: latch the operating point the domain
        // started at; the law needs a previous interval to compare to.
        seen[di] = true;
        level[di] = table.indexNearest(stats.frequency);
        prevOcc[di] = u;
        return;
    }

    int top = table.numPoints() - 1;
    int next = level[di];
    if (u >= prm.highWater) {
        next = top;
    } else {
        double du = u - prevOcc[di];
        if (du > prm.attackThreshold)
            next += prm.attackPoints;
        else if (du < -prm.attackThreshold)
            next -= prm.attackPoints;
        else if (u <= prm.idleWater)
            next -= prm.idleDecayPoints;
        else if (u <= prm.holdWater)
            next -= prm.decayPoints;
        // else: settled — the queue is usefully full but not backed
        // up, so the current operating point is about right.
        next = std::clamp(next, 0, top);
    }
    prevOcc[di] = u;

    if (next != level[di]) {
        level[di] = next;
        request(stats.domain, table.point(next).frequency);
    }
}

} // namespace mcd
