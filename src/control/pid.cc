#include "pid.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace mcd {

PidController::PidController(const PidParams &params,
                             const DvfsTable &table_)
    : prm(params), table(table_)
{
    if (prm.interval == 0)
        fatal("PidParams: interval must be > 0");
    if (!(prm.setpoint > 0.0 && prm.setpoint < 1.0))
        fatal("PidParams: setpoint must lie in (0, 1)");
    if (!(std::isfinite(prm.kp) && std::isfinite(prm.ki) &&
          std::isfinite(prm.kd)) ||
        prm.kp < 0.0 || prm.ki < 0.0 || prm.kd < 0.0) {
        fatal("PidParams: gains must be finite and >= 0");
    }
    if (prm.kp == 0.0 && prm.ki == 0.0)
        fatal("PidParams: at least one of kp, ki must be positive");
    level.fill(-1);
}

void
PidController::observe(const DomainStats &stats, Tick)
{
    if (stats.domain == Domain::FrontEnd && !prm.scaleFrontEnd)
        return;

    int di = domainIndex(stats.domain);
    double u = stats.meanOccupancy();
    int top = table.numPoints() - 1;

    if (!seen[di]) {
        // First observation: latch the operating point the domain
        // started at as the loop's operating base.
        seen[di] = true;
        level[di] = table.indexNearest(stats.frequency);
        base[di] = static_cast<double>(level[di]);
        prevErr[di] = u - prm.setpoint;
        return;
    }

    double err = u - prm.setpoint;
    integral[di] += err;
    if (prm.ki > 0.0) {
        // Anti-windup: the integral contribution is capped at one
        // table span in either direction, so a long idle phase cannot
        // bank unbounded downward pressure that a later burst must
        // pay off interval by interval.
        double cap = static_cast<double>(top) / prm.ki;
        integral[di] = std::clamp(integral[di], -cap, cap);
    }
    double out = base[di] + prm.kp * err + prm.ki * integral[di] +
        prm.kd * (err - prevErr[di]);
    prevErr[di] = err;

    int next = std::clamp(static_cast<int>(std::lround(out)), 0, top);
    if (next != level[di]) {
        level[di] = next;
        request(stats.domain, table.point(next).frequency);
    }
}

} // namespace mcd
