#include "registry.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"
#include "control/governor.hh"
#include "control/pid.hh"
#include "control/table_policy.hh"

namespace mcd {

std::vector<ControllerParam>
parseControllerParams(const std::string &spec, const std::string &what)
{
    std::vector<ControllerParam> out;
    std::string item;
    for (std::size_t i = 0;; ++i) {
        if (i < spec.size() && spec[i] != ',') {
            item += spec[i];
            continue;
        }
        if (!item.empty()) {
            std::size_t eq = item.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == item.size()) {
                fatal(what + ": malformed param '" + item +
                      "' (expected key=value)");
            }
            const std::string key = item.substr(0, eq);
            const std::string val = item.substr(eq + 1);
            char *end = nullptr;
            double v = std::strtod(val.c_str(), &end);
            if (!end || *end != '\0')
                fatal(what + ": param '" + key +
                      "' has non-numeric value '" + val + "'");
            out.emplace_back(key, v);
            item.clear();
        }
        if (i >= spec.size())
            break;
    }
    return out;
}

namespace {

[[noreturn]] void
unknownKey(const std::string &controller, const std::string &key,
           const char *valid)
{
    fatal("controller '" + controller + "': unknown param '" + key +
          "' (valid: " + valid + ")");
}

/** Shared "interval-us" / "scale-fe" handling; returns handled. */
template <typename Params>
bool
commonParam(Params &p, const ControllerParam &kv)
{
    if (kv.first == "interval-us") {
        p.interval = fromMicroseconds(kv.second);
        return true;
    }
    if (kv.first == "scale-fe") {
        p.scaleFrontEnd = kv.second != 0.0;
        return true;
    }
    return false;
}

std::unique_ptr<DvfsController>
makeOnlineQueue(const ControllerContext &ctx, const std::string &spec)
{
    OnlineQueueParams p = ctx.online;
    for (const ControllerParam &kv :
         parseControllerParams(spec, "controller 'online-queue'")) {
        if (commonParam(p, kv))
            continue;
        else if (kv.first == "attack-threshold")
            p.attackThreshold = kv.second;
        else if (kv.first == "attack-points")
            p.attackPoints = static_cast<int>(kv.second);
        else if (kv.first == "decay-points")
            p.decayPoints = static_cast<int>(kv.second);
        else if (kv.first == "idle-decay-points")
            p.idleDecayPoints = static_cast<int>(kv.second);
        else if (kv.first == "high-water")
            p.highWater = kv.second;
        else if (kv.first == "hold-water")
            p.holdWater = kv.second;
        else if (kv.first == "idle-water")
            p.idleWater = kv.second;
        else
            unknownKey("online-queue", kv.first,
                       "interval-us, scale-fe, attack-threshold, "
                       "attack-points, decay-points, "
                       "idle-decay-points, high-water, hold-water, "
                       "idle-water");
    }
    return std::make_unique<OnlineQueueController>(p, ctx.table,
                                                   ctx.seed);
}

std::unique_ptr<DvfsController>
makePid(const ControllerContext &ctx, const std::string &spec)
{
    PidParams p;
    for (const ControllerParam &kv :
         parseControllerParams(spec, "controller 'pid'")) {
        if (commonParam(p, kv))
            continue;
        else if (kv.first == "setpoint")
            p.setpoint = kv.second;
        else if (kv.first == "kp")
            p.kp = kv.second;
        else if (kv.first == "ki")
            p.ki = kv.second;
        else if (kv.first == "kd")
            p.kd = kv.second;
        else
            unknownKey("pid", kv.first,
                       "interval-us, scale-fe, setpoint, kp, ki, kd");
    }
    return std::make_unique<PidController>(p, ctx.table);
}

ControllerRegistry::Factory
makeGovernor(GovernorPolicy policy)
{
    return [policy](const ControllerContext &ctx,
                    const std::string &spec) {
        const std::string who = governorPolicyName(policy);
        GovernorParams p;
        for (const ControllerParam &kv :
             parseControllerParams(spec, "controller '" + who + "'")) {
            if (commonParam(p, kv))
                continue;
            else if (kv.first == "up-threshold")
                p.upThreshold = kv.second;
            else if (kv.first == "down-threshold")
                p.downThreshold = kv.second;
            else if (kv.first == "step-points")
                p.stepPoints = static_cast<int>(kv.second);
            else
                unknownKey(who, kv.first,
                           "interval-us, scale-fe, up-threshold, "
                           "down-threshold, step-points");
        }
        return std::unique_ptr<DvfsController>(
            std::make_unique<GovernorController>(policy, p, ctx.table));
    };
}

std::unique_ptr<DvfsController>
makeTable(const ControllerContext &ctx, const std::string &spec)
{
    TablePolicyParams p;
    for (const ControllerParam &kv :
         parseControllerParams(spec, "controller 'table'")) {
        if (commonParam(p, kv))
            continue;
        else if (kv.first == "trend-threshold")
            p.trendThreshold = kv.second;
        else
            unknownKey("table", kv.first,
                       "interval-us, scale-fe, trend-threshold");
    }
    return std::make_unique<TablePolicyController>(p, ctx.table);
}

} // namespace

ControllerRegistry &
ControllerRegistry::instance()
{
    static ControllerRegistry reg;
    static const bool initialized = [] {
        ControllerRegistry &r = reg;
        r.add("online-queue",
              "queue-occupancy attack/decay law (PR2's online leg)",
              makeOnlineQueue);
        r.add("pid", "PID feedback on queue occupancy vs a setpoint",
              makePid);
        r.add("governor-performance", "pin every domain at full speed",
              makeGovernor(GovernorPolicy::Performance));
        r.add("governor-powersave", "pin every domain at minimum speed",
              makeGovernor(GovernorPolicy::Powersave));
        r.add("governor-ondemand",
              "jump to full speed above the up-threshold, else track "
              "load proportionally",
              makeGovernor(GovernorPolicy::Ondemand));
        r.add("governor-conservative",
              "step gradually with a rollback point on dilation "
              "overshoot",
              makeGovernor(GovernorPolicy::Conservative));
        r.add("table",
              "offline-trained (occupancy x trend) -> step lookup",
              makeTable);
        return true;
    }();
    (void)initialized;
    return reg;
}

void
ControllerRegistry::add(const std::string &name,
                        const std::string &description, Factory factory)
{
    std::lock_guard<std::mutex> lk(mutex);
    for (const Entry &e : entries) {
        if (e.name == name)
            fatal("ControllerRegistry: duplicate registration of '" +
                  name + "'");
    }
    if (name.empty() ||
        name.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                               "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                               "0123456789_-") != std::string::npos) {
        fatal("ControllerRegistry: invalid controller name '" + name +
              "' (use [A-Za-z0-9_-]+)");
    }
    entries.push_back({name, description, std::move(factory)});
}

const ControllerRegistry::Entry *
ControllerRegistry::find(std::string_view name) const
{
    for (const Entry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

bool
ControllerRegistry::contains(std::string_view name) const
{
    std::lock_guard<std::mutex> lk(mutex);
    return find(name) != nullptr;
}

std::vector<std::string>
ControllerRegistry::names() const
{
    std::lock_guard<std::mutex> lk(mutex);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const Entry &e : entries)
        out.push_back(e.name);
    return out;
}

std::string
ControllerRegistry::describe(std::string_view name) const
{
    std::lock_guard<std::mutex> lk(mutex);
    const Entry *e = find(name);
    return e ? e->description : std::string();
}

std::string
ControllerRegistry::namesJoined() const
{
    std::lock_guard<std::mutex> lk(mutex);
    std::string out;
    for (const Entry &e : entries) {
        if (!out.empty())
            out += ", ";
        out += e.name;
    }
    return out;
}

std::unique_ptr<DvfsController>
ControllerRegistry::make(const std::string &name,
                         const ControllerContext &ctx,
                         const std::string &params) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lk(mutex);
        const Entry *e = find(name);
        if (!e) {
            std::string known;
            for (const Entry &en : entries) {
                if (!known.empty())
                    known += ", ";
                known += en.name;
            }
            fatal("unknown controller '" + name + "' (registered: " +
                  known + ")");
        }
        factory = e->factory;
    }
    return factory(ctx, params);
}

} // namespace mcd
