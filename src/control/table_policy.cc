#include "table_policy.hh"

#include <algorithm>

#include "common/log.hh"

namespace mcd {

const TablePolicyController::StepTable &
TablePolicyController::trainedTable()
{
    // Rows: occupancy bucket (0 = near empty .. 7 = near full).
    // Columns: trend (falling, flat, rising). Entries are operating-
    // point deltas; +/-32 saturates against the 32-point table.
    static const StepTable t{{
        {{-4, -3, +2}},     // [0, 12.5%): idle — decay hard
        {{-2, -2, +3}},     // [12.5, 25%): light — probe down
        {{-1, -1, +3}},     // [25, 37.5%)
        {{0, 0, +4}},       // [37.5, 50%): settled band — hold
        {{0, 0, +4}},       // [50, 62.5%)
        {{+2, +1, +5}},     // [62.5, 75%): filling — speed up
        {{+4, +3, +6}},     // [75, 87.5%): back pressure building
        {{+32, +32, +32}},  // [87.5%, 1]: saturated — full speed
    }};
    return t;
}

TablePolicyController::TablePolicyController(
    const TablePolicyParams &params, const DvfsTable &table_)
    : TablePolicyController(params, table_, trainedTable())
{}

TablePolicyController::TablePolicyController(
    const TablePolicyParams &params, const DvfsTable &table_,
    const StepTable &steps_)
    : prm(params), table(table_), steps(steps_)
{
    if (prm.interval == 0)
        fatal("TablePolicyParams: interval must be > 0");
    if (!(prm.trendThreshold > 0.0 && prm.trendThreshold < 1.0))
        fatal("TablePolicyParams: trendThreshold must lie in (0, 1)");
    level.fill(-1);
}

void
TablePolicyController::observe(const DomainStats &stats, Tick)
{
    if (stats.domain == Domain::FrontEnd && !prm.scaleFrontEnd)
        return;

    int di = domainIndex(stats.domain);
    double u = stats.meanOccupancy();

    if (!seen[di]) {
        seen[di] = true;
        level[di] = table.indexNearest(stats.frequency);
        prevOcc[di] = u;
        return;
    }

    int occBucket = std::clamp(
        static_cast<int>(u * static_cast<double>(kOccBuckets)), 0,
        kOccBuckets - 1);
    double du = u - prevOcc[di];
    int trend = du < -prm.trendThreshold ? 0
        : du > prm.trendThreshold       ? 2
                                        : 1;
    prevOcc[di] = u;

    int top = table.numPoints() - 1;
    int next =
        std::clamp(level[di] + steps[occBucket][trend], 0, top);
    if (next != level[di]) {
        level[di] = next;
        request(stats.domain, table.point(next).frequency);
    }
}

} // namespace mcd
