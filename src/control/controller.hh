/**
 * @file
 * The pluggable DVFS control plane.
 *
 * A DvfsController is the policy half of dynamic frequency/voltage
 * scaling: the simulator (McdProcessor) calls observe() with a
 * per-domain utilization snapshot at domain-clock edges and then
 * drains requests(), forwarding each request to the matching domain's
 * DomainDvfs transition engine. The controller never touches the
 * hardware model directly, so new policies — offline schedules,
 * static pins, online feedback loops, learned or coordinated
 * policies — need no processor changes.
 *
 * Controllers are stateful and single-run: construct one per
 * simulated processor run.
 */

#ifndef MCD_CONTROL_CONTROLLER_HH
#define MCD_CONTROL_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/schedule.hh"
#include "common/types.hh"

namespace mcd {

/**
 * One domain-edge observation: the windowed occupancy of the domain's
 * primary instruction queue (ROB for the front end, issue queues for
 * the execution domains, LSQ for load/store) since the previous
 * observation of the same domain, plus instantaneous state.
 */
struct DomainStats
{
    Domain domain = Domain::Integer;
    std::uint64_t windowCycles = 0;     //!< domain edges in the window
    std::uint64_t occupancySum = 0;     //!< Σ queue entries per edge
    std::size_t queueLength = 0;        //!< instantaneous entries
    int queueCapacity = 0;
    Hertz frequency = 0.0;              //!< current domain frequency

    /** Mean queue-fill fraction [0, 1] over the window. */
    double
    meanOccupancy() const
    {
        if (!windowCycles || queueCapacity <= 0)
            return 0.0;
        return static_cast<double>(occupancySum) /
            (static_cast<double>(windowCycles) *
             static_cast<double>(queueCapacity));
    }
};

/** One operating-point request produced by a controller. */
struct FreqRequest
{
    Domain domain = Domain::Integer;
    Hertz frequency = 0.0;
};

/**
 * Interface of every frequency-control policy.
 *
 * Protocol, per domain-clock edge of domain d (MCD runs only):
 *
 *   1. the processor advances d's DVFS transition engine;
 *   2. if at least samplePeriod() has elapsed since d's last
 *      observation, the processor calls observe() with d's stats;
 *   3. the processor forwards every pending request to the matching
 *      domain's transition engine and clears the list.
 *
 * samplePeriod() == 0 means "observe at every edge" (what the offline
 * schedule replay needs for cycle-exact request times).
 */
class DvfsController
{
  public:
    virtual ~DvfsController() = default;

    virtual const char *name() const = 0;

    /** Minimum picoseconds between observations of one domain. */
    virtual Tick samplePeriod() const { return 0; }

    /** Digest one observation; queue requests via request(). */
    virtual void observe(const DomainStats &stats, Tick now) = 0;

    /** Requests produced since the last clearRequests(). */
    const std::vector<FreqRequest> &requests() const { return pending; }

    /** Drop (already forwarded) requests, keeping capacity. */
    void clearRequests() { pending.clear(); }

    /** Total requests emitted over the controller's lifetime. */
    std::uint64_t requestsIssued() const { return issued; }

  protected:
    void
    request(Domain d, Hertz f)
    {
        pending.push_back({d, f});
        ++issued;
    }

  private:
    std::vector<FreqRequest> pending;
    std::uint64_t issued = 0;
};

/**
 * Replays an offline ReconfigSchedule (the paper's oracle path).
 *
 * Behavior-preserving by construction: entries for a domain are
 * emitted, in schedule order, at the first edge of that domain whose
 * time is >= the entry time — exactly the cursor walk the processor's
 * old applySchedule() performed. The schedule is not owned and must
 * outlive the controller.
 */
class ScheduleController : public DvfsController
{
  public:
    explicit ScheduleController(const ReconfigSchedule &schedule);

    const char *name() const override { return "schedule"; }
    void observe(const DomainStats &stats, Tick now) override;

    /** Entries not yet emitted (test hook). */
    std::size_t pendingEntries() const;

  private:
    std::array<std::vector<ReconfigEntry>, numDomains> perDomain;
    std::array<std::size_t, numDomains> cursor{};
};

/**
 * Pins each domain at a fixed operating point: one request per domain
 * at its first edge, nothing afterwards. Models statically scaled
 * configurations (and exercises the transition engines' initial ramp
 * when the targets differ from the construction-time frequencies).
 */
class StaticController : public DvfsController
{
  public:
    explicit StaticController(
        const std::array<Hertz, numDomains> &targets);

    const char *name() const override { return "static"; }
    void observe(const DomainStats &stats, Tick now) override;

  private:
    std::array<Hertz, numDomains> target;
    std::array<bool, numDomains> sent{};
};

} // namespace mcd

#endif // MCD_CONTROL_CONTROLLER_HH
