/**
 * @file
 * PID queue-feedback DVFS controller.
 *
 * Classic control-loop feedback applied to the MCD queues (after the
 * PID-per-core direction of the CMP DVFS literature): each control
 * interval the error between a domain queue's mean occupancy and a
 * fixed setpoint drives a proportional-integral-derivative law whose
 * output is a continuous operating-point level. A queue running above
 * the setpoint means the domain is falling behind (raise frequency);
 * below it the domain has slack (lower frequency). The integral term
 * removes steady-state error — a phase that needs exactly 700 MHz
 * settles there instead of oscillating around it — and is clamped so
 * its contribution can never exceed the table span (anti-windup).
 *
 * Fully deterministic: the law is pure double arithmetic over the
 * observation sequence; identical observations produce identical
 * requests. The front end stays pinned (the paper's choice) unless
 * scaleFrontEnd is set.
 */

#ifndef MCD_CONTROL_PID_HH
#define MCD_CONTROL_PID_HH

#include <array>

#include "clock/operating_points.hh"
#include "control/controller.hh"

namespace mcd {

/** Gains and setpoint of the PID occupancy loop. */
struct PidParams
{
    /** Control interval per domain (ps). */
    Tick interval = fromMicroseconds(2.5);

    /** Target mean queue-fill fraction. */
    double setpoint = 0.45;

    double kp = 48.0;   //!< proportional gain (points per unit error)
    double ki = 12.0;   //!< integral gain (points per unit error-sum)
    double kd = 8.0;    //!< derivative gain (points per unit error-delta)

    /** Scale the front end too (default: pinned, as in the paper). */
    bool scaleFrontEnd = false;
};

class PidController : public DvfsController
{
  public:
    explicit PidController(const PidParams &params = {},
                           const DvfsTable &table = {});

    const char *name() const override { return "pid"; }
    Tick samplePeriod() const override { return prm.interval; }
    void observe(const DomainStats &stats, Tick now) override;

    /** Current operating-point index of @p d (test hook; -1 before
     *  the domain's first observation). */
    int pointIndex(Domain d) const { return level[domainIndex(d)]; }

    const PidParams &params() const { return prm; }

  private:
    PidParams prm;
    DvfsTable table;

    std::array<int, numDomains> level;      //!< current point index
    std::array<double, numDomains> base{};  //!< latched initial index
    std::array<double, numDomains> integral{};
    std::array<double, numDomains> prevErr{};
    std::array<bool, numDomains> seen{};
};

} // namespace mcd

#endif // MCD_CONTROL_PID_HH
