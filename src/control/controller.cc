#include "controller.hh"

namespace mcd {

ScheduleController::ScheduleController(const ReconfigSchedule &schedule)
{
    // Split per domain for cheap cursor-based emission, preserving
    // schedule order within each domain.
    for (const ReconfigEntry &e : schedule.all())
        perDomain[domainIndex(e.domain)].push_back(e);
}

void
ScheduleController::observe(const DomainStats &stats, Tick now)
{
    int di = domainIndex(stats.domain);
    const auto &list = perDomain[di];
    std::size_t &cur = cursor[di];
    while (cur < list.size() && list[cur].when <= now) {
        request(stats.domain, list[cur].frequency);
        ++cur;
    }
}

std::size_t
ScheduleController::pendingEntries() const
{
    std::size_t n = 0;
    for (int d = 0; d < numDomains; ++d)
        n += perDomain[d].size() - cursor[d];
    return n;
}

StaticController::StaticController(
    const std::array<Hertz, numDomains> &targets)
    : target(targets)
{}

void
StaticController::observe(const DomainStats &stats, Tick)
{
    int di = domainIndex(stats.domain);
    if (sent[di])
        return;
    sent[di] = true;
    if (target[di] > 0.0 && target[di] != stats.frequency)
        request(stats.domain, target[di]);
}

} // namespace mcd
