/**
 * @file
 * Online queue-driven attack/decay DVFS controller.
 *
 * The paper's offline shaker/clustering tool is an oracle: it sees the
 * whole trace before choosing frequencies. This controller is the
 * practical online mechanism the paper frames that oracle as a bound
 * for (and that the authors' follow-up work built): each control
 * interval it reads the mean occupancy of a domain's primary queue —
 * issue queues for the execution domains, LSQ for load/store — and
 * applies an attack/decay law:
 *
 *  - attack: a significant occupancy *change* since the previous
 *    interval means the workload shifted; move the operating point
 *    several table steps in the same direction at once. A queue close
 *    to full (above highWater) jumps straight to full speed — back
 *    pressure there is already costing performance.
 *  - decay: a quiet interval with a lightly filled queue means the
 *    current speed is more than sufficient; probe downward by a small
 *    number of table steps (faster when the queue is nearly empty —
 *    an idle domain burns clock-tree energy for nothing). A steady
 *    queue between holdWater and highWater holds its point: the
 *    domain has settled at a speed that keeps the queue usefully
 *    full without back pressure.
 *
 * The feedback closes through the queue itself: decaying below the
 * workload's needs backs the queue up, which triggers an attack back
 * up. The front end stays pinned at its initial frequency (the
 * paper's choice) unless scaleFrontEnd is set.
 *
 * The controller is fully deterministic: identical observation
 * sequences produce identical request sequences for a fixed seed (the
 * seed is reserved for future stochastic probing and does not affect
 * the current law).
 */

#ifndef MCD_CONTROL_ONLINE_QUEUE_HH
#define MCD_CONTROL_ONLINE_QUEUE_HH

#include <array>
#include <cstdint>

#include "clock/operating_points.hh"
#include "control/controller.hh"

namespace mcd {

/** Tuning parameters of the attack/decay law. */
struct OnlineQueueParams
{
    /** Control interval per domain (ps). */
    Tick interval = fromMicroseconds(2.5);

    /** Occupancy-change fraction that triggers an attack. */
    double attackThreshold = 0.08;

    /** Operating-point steps moved per attack. */
    int attackPoints = 6;

    /** Steps dropped per quiet interval. */
    int decayPoints = 1;

    /** Steps dropped per near-idle interval. */
    int idleDecayPoints = 4;

    /** Mean occupancy above which the domain jumps to full speed. */
    double highWater = 0.70;

    /** Mean occupancy below which quiet intervals decay; between
     *  here and highWater a steady queue holds its operating point
     *  (the domain has settled at a speed that keeps the queue
     *  usefully full without back pressure). */
    double holdWater = 0.30;

    /** Mean occupancy below which the fast decay applies. */
    double idleWater = 0.04;

    /** Scale the front end too (the paper pins it; default off). */
    bool scaleFrontEnd = false;
};

class OnlineQueueController : public DvfsController
{
  public:
    explicit OnlineQueueController(const OnlineQueueParams &params = {},
                                   const DvfsTable &table = {},
                                   std::uint64_t seed = 1);

    const char *name() const override { return "online-queue"; }
    Tick samplePeriod() const override { return prm.interval; }
    void observe(const DomainStats &stats, Tick now) override;

    /** Current operating-point index of @p d (test hook; -1 before
     *  the domain's first observation). */
    int pointIndex(Domain d) const { return level[domainIndex(d)]; }

    const OnlineQueueParams &params() const { return prm; }

  private:
    OnlineQueueParams prm;
    DvfsTable table;
    std::uint64_t seed;     //!< reserved (determinism contract above)

    std::array<int, numDomains> level;
    std::array<double, numDomains> prevOcc{};
    std::array<bool, numDomains> seen{};
};

} // namespace mcd

#endif // MCD_CONTROL_ONLINE_QUEUE_HH
