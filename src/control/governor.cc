#include "governor.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace mcd {

const char *
governorPolicyName(GovernorPolicy policy)
{
    switch (policy) {
      case GovernorPolicy::Performance: return "governor-performance";
      case GovernorPolicy::Powersave: return "governor-powersave";
      case GovernorPolicy::Ondemand: return "governor-ondemand";
      case GovernorPolicy::Conservative: return "governor-conservative";
    }
    return "?";
}

GovernorController::GovernorController(GovernorPolicy policy,
                                       const GovernorParams &params,
                                       const DvfsTable &table_)
    : pol(policy), prm(params), table(table_)
{
    if (prm.interval == 0)
        fatal("GovernorParams: interval must be > 0");
    if (!(prm.upThreshold > 0.0 && prm.upThreshold < 1.0))
        fatal("GovernorParams: upThreshold must lie in (0, 1)");
    if (!(prm.downThreshold >= 0.0 &&
          prm.downThreshold < prm.upThreshold)) {
        fatal("GovernorParams: downThreshold must satisfy "
              "0 <= downThreshold < upThreshold");
    }
    if (prm.stepPoints < 1)
        fatal("GovernorParams: stepPoints must be >= 1");
    level.fill(-1);
}

void
GovernorController::moveTo(Domain d, int next)
{
    int di = domainIndex(d);
    if (next == level[di])
        return;
    level[di] = next;
    request(d, table.point(next).frequency);
}

void
GovernorController::observe(const DomainStats &stats, Tick)
{
    if (stats.domain == Domain::FrontEnd && !prm.scaleFrontEnd)
        return;

    int di = domainIndex(stats.domain);
    int top = table.numPoints() - 1;
    double u = stats.meanOccupancy();

    if (!seen[di]) {
        seen[di] = true;
        level[di] = table.indexNearest(stats.frequency);
        // The static policies act immediately; the adaptive ones need
        // a first interval of history before moving.
        if (pol == GovernorPolicy::Performance)
            moveTo(stats.domain, top);
        else if (pol == GovernorPolicy::Powersave)
            moveTo(stats.domain, 0);
        return;
    }

    switch (pol) {
      case GovernorPolicy::Performance:
        moveTo(stats.domain, top);
        return;
      case GovernorPolicy::Powersave:
        moveTo(stats.domain, 0);
        return;
      case GovernorPolicy::Ondemand:
      case GovernorPolicy::Conservative:
        break;
    }

    // RollbackPoint revert: the previous interval stepped down and
    // the queue is now backed up past the up-threshold — the step
    // overshot into dilation territory. Restore the saved point in
    // one jump rather than climbing back gradually.
    if (armed[di] && u >= prm.upThreshold) {
        armed[di] = false;
        moveTo(stats.domain, rollback[di]);
        return;
    }

    int next = level[di];
    if (pol == GovernorPolicy::Ondemand) {
        if (u >= prm.upThreshold) {
            next = top;
        } else {
            // Linux ondemand's proportional rule mapped to points:
            // target = max * load / up_threshold.
            next = static_cast<int>(
                std::lround(static_cast<double>(top) * u /
                            prm.upThreshold));
            next = std::clamp(next, 0, top);
        }
    } else {    // Conservative
        if (u >= prm.upThreshold)
            next = std::clamp(next + prm.stepPoints, 0, top);
        else if (u <= prm.downThreshold)
            next = std::clamp(next - prm.stepPoints, 0, top);
        // else: hold.
    }

    if (next < level[di]) {
        // Arm a rollback point before committing any downward move.
        rollback[di] = level[di];
        armed[di] = true;
    } else if (next > level[di]) {
        armed[di] = false;
    }
    moveTo(stats.domain, next);
}

} // namespace mcd
