/**
 * @file
 * A cpufreq-style governor family for the MCD domains, after the
 * Linux governors Mammut's cpufreq layer wraps:
 *
 *  - performance: pin every scalable domain at the fastest operating
 *    point (the MCD-baseline frequencies, restated as a policy);
 *  - powersave: pin every scalable domain at the slowest point;
 *  - ondemand: jump straight to full speed when occupancy crosses the
 *    up-threshold, otherwise track a frequency proportional to the
 *    load (Linux's "scale freq = max * load / up_threshold" rule
 *    mapped onto the operating-point table);
 *  - conservative: step gradually — up a few points above the
 *    up-threshold, down a few points below the down-threshold, hold
 *    in between.
 *
 * The two adaptive policies carry a RollbackPoint (Mammut's term for
 * a saved state one can revert to): before every downward step the
 * governor snapshots the current operating point, and if the next
 * observation shows the queue backed up past the up-threshold — the
 * down-step overshot and is now dilating execution — it restores the
 * snapshot in one jump instead of crawling back step by step.
 *
 * All policies are deterministic and pin the front end (the paper's
 * choice) unless scaleFrontEnd is set.
 */

#ifndef MCD_CONTROL_GOVERNOR_HH
#define MCD_CONTROL_GOVERNOR_HH

#include <array>

#include "clock/operating_points.hh"
#include "control/controller.hh"

namespace mcd {

enum class GovernorPolicy : std::uint8_t {
    Performance,
    Powersave,
    Ondemand,
    Conservative,
};

/** Human-readable policy name ("governor-ondemand", ...). */
const char *governorPolicyName(GovernorPolicy policy);

/** Tuning knobs shared by the adaptive policies. */
struct GovernorParams
{
    /** Control interval per domain (ps). */
    Tick interval = fromMicroseconds(2.5);

    /** Occupancy at/above which ondemand jumps to full speed and
     *  conservative steps up. */
    double upThreshold = 0.60;

    /** Occupancy at/below which conservative steps down. */
    double downThreshold = 0.20;

    /** Points moved per conservative step. */
    int stepPoints = 2;

    /** Scale the front end too (default: pinned). */
    bool scaleFrontEnd = false;
};

class GovernorController : public DvfsController
{
  public:
    explicit GovernorController(GovernorPolicy policy,
                                const GovernorParams &params = {},
                                const DvfsTable &table = {});

    const char *name() const override
    {
        return governorPolicyName(pol);
    }
    Tick samplePeriod() const override { return prm.interval; }
    void observe(const DomainStats &stats, Tick now) override;

    GovernorPolicy policy() const { return pol; }
    const GovernorParams &params() const { return prm; }

    /** Current operating-point index of @p d (test hook; -1 before
     *  the domain's first observation). */
    int pointIndex(Domain d) const { return level[domainIndex(d)]; }

    /** Whether @p d has an armed rollback point (test hook). */
    bool rollbackArmed(Domain d) const { return armed[domainIndex(d)]; }

  private:
    void moveTo(Domain d, int next);

    GovernorPolicy pol;
    GovernorParams prm;
    DvfsTable table;

    std::array<int, numDomains> level;
    std::array<int, numDomains> rollback{};  //!< point before down-step
    std::array<bool, numDomains> armed{};    //!< rollback point valid
    std::array<bool, numDomains> seen{};
};

} // namespace mcd

#endif // MCD_CONTROL_GOVERNOR_HH
