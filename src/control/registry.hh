/**
 * @file
 * The controller registry: dynamic-control policies as data.
 *
 * Every DVFS control policy registers a named factory here; the
 * experiment layer instantiates controllers by (name, param spec)
 * instead of hard-coding one class per matrix leg. Adding a policy to
 * the full evaluation — every figure, the results JSON, the cache,
 * the fault sites, the tournament leaderboard — is one registration.
 *
 * The param spec is a comma-separated "key=value" list with numeric
 * values ("setpoint=0.5,kp=32"); each factory documents its keys and
 * rejects unknown ones by enumerating the valid set, the same
 * actionable-rejection treatment dvfsKindFromName's callers give
 * model names. An empty spec means the factory defaults, which for
 * "online-queue" are the experiment config's OnlineQueueParams — so
 * the registry-built online leg is bit-identical to the historical
 * hard-coded one.
 *
 * Thread safety: registration happens during static init / first use
 * under a mutex; lookups take the same mutex. Factories themselves
 * are pure (construct a fresh controller per call), so concurrent
 * make() calls from matrix workers are safe.
 */

#ifndef MCD_CONTROL_REGISTRY_HH
#define MCD_CONTROL_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "clock/operating_points.hh"
#include "control/controller.hh"
#include "control/online_queue.hh"

namespace mcd {

/**
 * Everything a controller factory may draw defaults from: the
 * operating-point table, the experiment seed, and the experiment
 * config's online-queue tuning (the online leg's historical knobs).
 */
struct ControllerContext
{
    DvfsTable table;
    std::uint64_t seed = 1;
    OnlineQueueParams online;
};

/**
 * One parsed "key=value" pair of a controller param spec. Values are
 * numeric; booleans are 0/1.
 */
using ControllerParam = std::pair<std::string, double>;

/**
 * Parse a comma-separated "key=value[,key=value...]" spec. Fatal on
 * malformed items (missing '=', empty key, non-numeric value), naming
 * @p what in the message. An empty spec parses to an empty list.
 */
std::vector<ControllerParam>
parseControllerParams(const std::string &spec, const std::string &what);

class ControllerRegistry
{
  public:
    /** Builds a fresh controller for one simulated run. */
    using Factory = std::function<std::unique_ptr<DvfsController>(
        const ControllerContext &ctx, const std::string &params)>;

    /** The process-wide registry, with the built-ins registered. */
    static ControllerRegistry &instance();

    /** Register @p factory under @p name (fatal on duplicates). */
    void add(const std::string &name, const std::string &description,
             Factory factory);

    bool contains(std::string_view name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** One-line description of @p name (empty when unknown). */
    std::string describe(std::string_view name) const;

    /**
     * Instantiate the controller registered as @p name. Fatal when
     * the name is unknown, enumerating every registered name.
     */
    std::unique_ptr<DvfsController>
    make(const std::string &name, const ControllerContext &ctx,
         const std::string &params = {}) const;

    /** The registered names joined ", " (for error messages). */
    std::string namesJoined() const;

  private:
    ControllerRegistry() = default;

    struct Entry
    {
        std::string name;
        std::string description;
        Factory factory;
    };

    const Entry *find(std::string_view name) const;

    mutable std::mutex mutex;
    std::vector<Entry> entries;
};

} // namespace mcd

#endif // MCD_CONTROL_REGISTRY_HH
