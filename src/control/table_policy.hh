/**
 * @file
 * Offline-trained table-lookup DVFS controller.
 *
 * The learned-policy direction of the DFS literature, distilled to
 * its deployable core: all the "learning" happens offline, and what
 * ships is a small lookup table indexed by the quantized observation
 * — (mean queue occupancy bucket) x (occupancy trend) — whose cells
 * hold operating-point step deltas. At runtime the controller is one
 * table read per observation: no floating-point law, no gains to
 * tune, and trivially auditable.
 *
 * The default table was fitted offline against the attack/decay
 * oracle traces on the profiling runs: near-empty queues decay fast,
 * mid-range queues hold or drift with the trend, rising occupancy is
 * attacked proportionally to how full the queue already is, and the
 * top bucket saturates to full speed. Tests and ablations can supply
 * a custom table.
 *
 * Deterministic; the front end stays pinned unless scaleFrontEnd.
 */

#ifndef MCD_CONTROL_TABLE_POLICY_HH
#define MCD_CONTROL_TABLE_POLICY_HH

#include <array>

#include "clock/operating_points.hh"
#include "control/controller.hh"

namespace mcd {

/** Quantization and interval knobs of the table policy. */
struct TablePolicyParams
{
    /** Control interval per domain (ps). */
    Tick interval = fromMicroseconds(2.5);

    /** Occupancy change below which the trend counts as flat. */
    double trendThreshold = 0.05;

    /** Scale the front end too (default: pinned). */
    bool scaleFrontEnd = false;
};

class TablePolicyController : public DvfsController
{
  public:
    /** Occupancy buckets: floor(u * kOccBuckets), clamped. */
    static constexpr int kOccBuckets = 8;
    /** Trend buckets: 0 falling, 1 flat, 2 rising. */
    static constexpr int kTrendBuckets = 3;

    /** Point-delta table: [occupancy bucket][trend bucket]. */
    using StepTable =
        std::array<std::array<int, kTrendBuckets>, kOccBuckets>;

    /** The default offline-trained table (see file comment). */
    static const StepTable &trainedTable();

    explicit TablePolicyController(const TablePolicyParams &params = {},
                                   const DvfsTable &table = {});
    TablePolicyController(const TablePolicyParams &params,
                          const DvfsTable &table,
                          const StepTable &steps);

    const char *name() const override { return "table"; }
    Tick samplePeriod() const override { return prm.interval; }
    void observe(const DomainStats &stats, Tick now) override;

    /** Current operating-point index of @p d (test hook; -1 before
     *  the domain's first observation). */
    int pointIndex(Domain d) const { return level[domainIndex(d)]; }

    const TablePolicyParams &params() const { return prm; }

  private:
    TablePolicyParams prm;
    DvfsTable table;
    StepTable steps;

    std::array<int, numDomains> level;
    std::array<double, numDomains> prevOcc{};
    std::array<bool, numDomains> seen{};
};

} // namespace mcd

#endif // MCD_CONTROL_TABLE_POLICY_HH
