#include "telemetry.hh"

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

namespace mcd {
namespace obs {

namespace {

std::string
domainStat(const char *group, Domain d, const char *leaf)
{
    std::string s(group);
    s += '.';
    for (const char *p = domainShortName(d); *p; ++p)
        s += static_cast<char>(std::tolower(
            static_cast<unsigned char>(*p)));
    s += '.';
    s += leaf;
    return s;
}

std::string
mhzArgs(Hertz f)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "\"mhz\": %.17g", f / 1e6);
    return buf;
}

} // namespace

TelemetryConfig
TelemetryConfig::full(Tick period_ps)
{
    TelemetryConfig c;
    c.samplePeriod = period_ps;
    c.traceEvents = true;
    c.freqSeries = true;
    return c;
}

Telemetry::Telemetry(const TelemetryConfig &config)
    : cfg(config), ts(config.samplePeriod), exp(config.traceEvents)
{
    // The invariant engine registers its counters first so the
    // registry order (and thus the merged stats JSON) is stable no
    // matter when the run publishes its own stats.
    if (!cfg.invariants.empty()) {
        inv = std::make_unique<InvariantEngine>(
            InvariantEngine::parseSpec(cfg.invariants), reg,
            exp.enabled() ? &exp : nullptr);
    }

    // Occupancy buckets: ten even fill-fraction deciles.
    std::vector<double> occBounds;
    for (int i = 1; i <= 10; ++i)
        occBounds.push_back(0.1 * i);

    for (int d = 0; d < numDomains; ++d) {
        Domain dom = static_cast<Domain>(d);
        freqChanges[d] = &reg.counter(
            domainStat("clock", dom, "freq_changes"),
            "frequency changes applied to the domain clock");
        relockWindows[d] = &reg.counter(
            domainStat("clock", dom, "relock_windows"),
            "PLL re-lock idle windows entered");
        relockPs[d] = &reg.counter(
            domainStat("clock", dom, "relock_ps"),
            "picoseconds spent idle in PLL re-lock");
        decisions[d] = &reg.counter(
            domainStat("control", dom, "requests"),
            "frequency requests a controller issued for the domain");
        occupancyHist[d] = &reg.histogram(
            domainStat("pipeline", dom, "occupancy"), occBounds,
            "sampled fill fraction of the domain's primary queue");
    }
}

void
Telemetry::onRunStart(const std::array<Hertz, numDomains> &freq,
                      const std::array<Volt, numDomains> &volt)
{
    if (inv)
        inv->runStart(freq, volt);
}

void
Telemetry::onFrequencyChange(Domain d, Tick when, Hertz f, Volt v)
{
    freqChanges[domainIndex(d)]->inc();
    if (cfg.freqSeries)
        ts.noteFrequency(d, when, f);
    if (inv)
        inv->frequencyChange(d, when, f, v);
    if (exp.enabled()) {
        std::string name(domainShortName(d));
        name += " frequency";
        exp.counter(std::move(name), "MHz", domainIndex(d), when, f / 1e6);
    }
}

void
Telemetry::onRelockWindow(Domain d, Tick start, Tick end)
{
    int di = domainIndex(d);
    relockWindows[di]->inc();
    relockPs[di]->inc(end - start);
    if (inv)
        inv->relockWindow(d, start, end);
    if (exp.enabled())
        exp.complete("PLL re-lock", "dvfs", di, start, end - start);
}

void
Telemetry::onControllerDecision(const char *controller, Domain d,
                                Tick when, Hertz target)
{
    decisions[domainIndex(d)]->inc();
    if (exp.enabled()) {
        std::string args = mhzArgs(target);
        args += ", \"controller\": \"";
        args += jsonEscape(controller);
        args += "\"";
        std::string name("request ");
        name += domainShortName(d);
        exp.instant(std::move(name), "control", domainIndex(d), when,
                    std::move(args));
    }
}

void
Telemetry::onSample(const TimeSample &s)
{
    for (int d = 0; d < numDomains; ++d)
        occupancyHist[d]->add(s.occupancy[d]);
    if (inv)
        inv->sample(s);
    if (exp.enabled()) {
        for (int d = 0; d < numDomains; ++d) {
            std::string name(domainShortName(static_cast<Domain>(d)));
            name += " occupancy";
            exp.counter(std::move(name), "fill", d, s.when,
                        s.occupancy[d]);
        }
    }
    ts.record(s);
}

void
Telemetry::onWatchdogTrip(Tick when)
{
    reg.counter("run.watchdog_trips",
                "runs aborted by the no-progress/budget watchdog")
        .inc();
    if (exp.enabled())
        exp.instant("watchdog trip", "fault", 0, when);
}

void
Telemetry::onRunEnd(Tick execTime)
{
    if (inv)
        inv->runEnd(execTime);
}

} // namespace obs
} // namespace mcd
