/**
 * @file
 * Chrome-trace event export.
 *
 * Collects simulator events — frequency changes, PLL re-lock windows,
 * cross-domain synchronization stalls, controller decisions — and
 * writes them in the Chrome Trace Event JSON format, loadable in
 * chrome://tracing or https://ui.perfetto.dev. Simulated picoseconds
 * map onto the trace's microsecond axis; domains map onto threads;
 * each simulated run (one benchmark leg) maps onto a process, so a
 * merged matrix trace shows every leg side by side.
 *
 * Collection is single-threaded per exporter (one exporter per run
 * leg); merging across legs happens at write time in the caller's
 * thread, which keeps the layer race-free under the experiment
 * thread pool.
 */

#ifndef MCD_OBS_TRACE_EXPORT_HH
#define MCD_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mcd {
namespace obs {

/** One Chrome trace event, still on the picosecond axis. */
struct TraceEvent
{
    char phase = 'i';       //!< 'X' complete, 'i' instant, 'C' counter
    int tid = 0;            //!< domain index
    Tick ts = 0;
    Tick dur = 0;           //!< 'X' only
    std::string name;
    std::string category;
    /**
     * Pre-rendered JSON object body for "args" (without braces),
     * e.g. "\"mhz\": 800". Empty = no args.
     */
    std::string args;
};

class TraceExporter
{
  public:
    explicit TraceExporter(bool enabled_ = false) : on(enabled_) {}

    bool enabled() const { return on; }

    /** A duration event ('X'). */
    void complete(std::string name, std::string category, int tid,
                  Tick start, Tick dur, std::string args = {});

    /** A zero-duration instant event ('i'). */
    void instant(std::string name, std::string category, int tid,
                 Tick ts, std::string args = {});

    /**
     * A counter series point ('C'). Chrome plots counters per
     * (process, name), so per-domain series carry the domain in the
     * name; @p series names the plotted value inside the event args.
     */
    void counter(std::string name, const char *series, int tid, Tick ts,
                 double value);

    const std::vector<TraceEvent> &events() const { return evts; }
    std::size_t size() const { return evts.size(); }

  private:
    bool on;
    std::vector<TraceEvent> evts;
};

/** One simulated run's contribution to a merged trace file. */
struct TraceProcess
{
    std::string name;               //!< e.g. "adpcm/online"
    const TraceExporter *trace = nullptr;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Write a complete Chrome trace JSON document. Each process gets
 * pid = its index + 1, a process_name metadata record, and one named
 * thread per clock domain. Deterministic for a fixed input: no wall
 * clock, host pid, or pointer values are embedded.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceProcess> &processes);

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_TRACE_EXPORT_HH
