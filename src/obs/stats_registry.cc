#include "stats_registry.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/log.hh"

namespace mcd {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : ubounds(std::move(upper_bounds)), counts(ubounds.size() + 1, 0)
{
    mcdAssert(std::is_sorted(ubounds.begin(), ubounds.end()),
              "Histogram bounds must be ascending");
}

void
Histogram::add(double v)
{
    // Bucket counts are small (typically < 16); a linear scan beats a
    // binary search at this size and stays branch-predictable for the
    // common low buckets.
    std::size_t i = 0;
    while (i < ubounds.size() && v > ubounds[i])
        ++i;
    ++counts[i];
    stats.add(v);
}

double
Histogram::upperBound(std::size_t i) const
{
    return i < ubounds.size() ? ubounds[i]
                              : std::numeric_limits<double>::infinity();
}

double
Histogram::quantile(double q) const
{
    if (stats.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double target = q * static_cast<double>(stats.count());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] &&
            static_cast<double>(cum + counts[i]) >= target) {
            double lo = i == 0 ? stats.min() : ubounds[i - 1];
            double hi = i < ubounds.size() ? ubounds[i] : stats.max();
            double frac = (target - static_cast<double>(cum)) /
                static_cast<double>(counts[i]);
            double v = lo + frac * (hi - lo);
            return std::clamp(v, stats.min(), stats.max());
        }
        cum += counts[i];
    }
    return stats.max();
}

void
Histogram::merge(const Histogram &other)
{
    mcdAssert(ubounds == other.ubounds,
              "Histogram::merge: bucket bounds differ");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    stats.merge(other.stats);
}

StatsRegistry::Entry &
StatsRegistry::getOrCreate(const std::string &name, std::string desc,
                           StatKind kind, std::vector<double> bounds)
{
    auto it = index.find(name);
    if (it != index.end()) {
        Entry &e = items[it->second];
        if (e.kind() != kind) {
            panic("StatsRegistry: '" + name +
                  "' re-registered as a different kind");
        }
        return e;
    }
    Entry e;
    e.name = name;
    e.desc = std::move(desc);
    switch (kind) {
      case StatKind::Counter: e.stat = Counter{}; break;
      case StatKind::Gauge: e.stat = Gauge{}; break;
      case StatKind::Histogram:
        e.stat = Histogram(std::move(bounds));
        break;
    }
    index.emplace(name, items.size());
    items.push_back(std::move(e));
    return items.back();
}

Counter &
StatsRegistry::counter(const std::string &name, std::string desc)
{
    return std::get<Counter>(
        getOrCreate(name, std::move(desc), StatKind::Counter).stat);
}

Gauge &
StatsRegistry::gauge(const std::string &name, std::string desc)
{
    return std::get<Gauge>(
        getOrCreate(name, std::move(desc), StatKind::Gauge).stat);
}

Histogram &
StatsRegistry::histogram(const std::string &name,
                         std::vector<double> upper_bounds,
                         std::string desc)
{
    return std::get<Histogram>(
        getOrCreate(name, std::move(desc), StatKind::Histogram,
                    std::move(upper_bounds)).stat);
}

const StatsRegistry::Entry *
StatsRegistry::find(std::string_view name) const
{
    auto it = index.find(std::string(name));
    return it == index.end() ? nullptr : &items[it->second];
}

std::vector<const StatsRegistry::Entry *>
StatsRegistry::withPrefix(std::string_view prefix) const
{
    std::vector<const Entry *> out;
    for (const Entry &e : items) {
        if (e.name.size() < prefix.size() ||
            e.name.compare(0, prefix.size(), prefix) != 0) {
            continue;
        }
        if (e.name.size() == prefix.size() ||
            e.name[prefix.size()] == '.') {
            out.push_back(&e);
        }
    }
    return out;
}

void
StatsRegistry::merge(const StatsRegistry &other)
{
    for (const Entry &oe : other.items) {
        switch (oe.kind()) {
          case StatKind::Counter:
            counter(oe.name, oe.desc)
                .inc(std::get<Counter>(oe.stat).value());
            break;
          case StatKind::Gauge:
            gauge(oe.name, oe.desc).set(std::get<Gauge>(oe.stat).value());
            break;
          case StatKind::Histogram: {
            const Histogram &oh = std::get<Histogram>(oe.stat);
            // Registration is idempotent and keeps the *existing*
            // bounds, so a bounds mismatch here would silently misbin
            // the other shard's counts. Fail fast, with both layouts.
            if (const Entry *mine = find(oe.name)) {
                const Histogram &h = std::get<Histogram>(mine->stat);
                if (h.bounds() != oh.bounds()) {
                    auto render = [](const std::vector<double> &b) {
                        std::string s = "[";
                        for (std::size_t i = 0; i < b.size(); ++i) {
                            if (i)
                                s += ", ";
                            s += std::to_string(b[i]);
                        }
                        return s + "]";
                    };
                    fatal("StatsRegistry::merge: histogram '" + oe.name +
                          "' has incompatible bucket bounds: ours " +
                          render(h.bounds()) + " vs theirs " +
                          render(oh.bounds()));
                }
            }
            histogram(oe.name, oh.bounds(), oe.desc).merge(oh);
            break;
          }
        }
    }
}

namespace {

/** JSON-safe number: finite values verbatim, NaN/inf as null. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

void
StatsRegistry::writeJson(std::ostream &os, const char *indent) const
{
    os << "{";
    bool first = true;
    for (const Entry &e : items) {
        os << (first ? "" : ",") << "\n" << indent << "  \"" << e.name
           << "\": ";
        first = false;
        switch (e.kind()) {
          case StatKind::Counter:
            os << std::get<Counter>(e.stat).value();
            break;
          case StatKind::Gauge:
            jsonNumber(os, std::get<Gauge>(e.stat).value());
            break;
          case StatKind::Histogram: {
            const Histogram &h = std::get<Histogram>(e.stat);
            const RunningStat &s = h.summary();
            os << "{\"count\": " << s.count() << ", \"sum\": ";
            jsonNumber(os, s.sum());
            os << ", \"min\": ";
            jsonNumber(os, s.empty() ? 0.0 : s.min());
            os << ", \"max\": ";
            jsonNumber(os, s.empty() ? 0.0 : s.max());
            os << ", \"p50\": ";
            jsonNumber(os, h.quantile(0.50));
            os << ", \"p90\": ";
            jsonNumber(os, h.quantile(0.90));
            os << ", \"p99\": ";
            jsonNumber(os, h.quantile(0.99));
            os << ", \"buckets\": [";
            for (std::size_t i = 0; i < h.numBuckets(); ++i) {
                os << (i ? ", " : "") << "{\"le\": ";
                jsonNumber(os, h.upperBound(i));
                os << ", \"count\": " << h.bucketCount(i) << "}";
            }
            os << "]}";
            break;
          }
        }
    }
    os << "\n" << indent << "}";
}

} // namespace obs
} // namespace mcd
