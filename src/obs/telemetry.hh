/**
 * @file
 * The per-run telemetry context: one StatsRegistry, one
 * TimeSeriesSampler, and one TraceExporter, plus the event hooks the
 * instrumented components call.
 *
 * Ownership and threading model: every simulated run (one McdProcessor)
 * owns exactly one Telemetry, so nothing here is locked — the PR 1
 * experiment thread pool runs one leg per thread and each leg's
 * telemetry is private to it. Merged views (matrix stats JSON, the
 * combined Chrome trace) are built after the runs complete, on the
 * collecting thread.
 *
 * Hooks are no-ops for disabled channels; the hot-loop cost of a
 * fully disabled Telemetry is one null-pointer test at the call site
 * (components hold a Telemetry* that is nullptr when observability is
 * off).
 */

#ifndef MCD_OBS_TELEMETRY_HH
#define MCD_OBS_TELEMETRY_HH

#include <array>
#include <memory>
#include <string>

#include "common/types.hh"
#include "obs/invariants.hh"
#include "obs/stats_registry.hh"
#include "obs/time_series.hh"
#include "obs/trace_export.hh"

namespace mcd {
namespace obs {

/** Which telemetry channels a run collects. */
struct TelemetryConfig
{
    /** Periodic sampling period in picoseconds; 0 = off. */
    Tick samplePeriod = 0;

    /** Collect Chrome trace events. */
    bool traceEvents = false;

    /** Record exact per-domain frequency series (Figure 8). */
    bool freqSeries = false;

    /**
     * Invariant spec (see obs/invariants.hh for the grammar); empty =
     * no engine. Deliberately NOT part of full(): the golden results
     * fixture is produced with full telemetry and must stay
     * byte-identical when invariants are off.
     */
    std::string invariants;

    bool
    enabled() const
    {
        return samplePeriod != 0 || traceEvents || freqSeries ||
               !invariants.empty();
    }

    /** Everything on, sampling at @p period_ps (default 10 us). */
    static TelemetryConfig full(Tick period_ps = fromMicroseconds(10.0));
};

class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig &config);

    const TelemetryConfig &config() const { return cfg; }

    StatsRegistry &stats() { return reg; }
    const StatsRegistry &stats() const { return reg; }
    TimeSeriesSampler &sampler() { return ts; }
    const TimeSeriesSampler &sampler() const { return ts; }
    TraceExporter &trace() { return exp; }
    const TraceExporter &trace() const { return exp; }

    /** The invariant engine, or nullptr when no spec was configured. */
    InvariantEngine *invariants() { return inv.get(); }
    const InvariantEngine *invariants() const { return inv.get(); }

    // ----- hooks, called by the instrumented components -----

    /** Initial per-domain operating points, before the first edge. */
    void onRunStart(const std::array<Hertz, numDomains> &freq,
                    const std::array<Volt, numDomains> &volt);

    /**
     * Domain @p d switched to frequency @p f at time @p when with its
     * voltage rail at @p v.
     */
    void onFrequencyChange(Domain d, Tick when, Hertz f, Volt v);

    /** Domain @p d is idle re-locking its PLL over [start, end). */
    void onRelockWindow(Domain d, Tick start, Tick end);

    /**
     * A controller issued a frequency request. @p controller is the
     * policy name (DvfsController::name()).
     */
    void onControllerDecision(const char *controller, Domain d,
                              Tick when, Hertz target);

    /** A periodic sample captured by the simulator loop. */
    void onSample(const TimeSample &s);

    /**
     * The run-loop watchdog tripped at @p when: counts the event and
     * drops an instant in the trace so an aborted leg's last moments
     * are visible next to the healthy ones.
     */
    void onWatchdogTrip(Tick when);

    /** End of run: final invariant evaluation at @p execTime. */
    void onRunEnd(Tick execTime);

  private:
    TelemetryConfig cfg;
    StatsRegistry reg;
    TimeSeriesSampler ts;
    TraceExporter exp;
    std::unique_ptr<InvariantEngine> inv;

    // Pre-registered hot-path stats (stable registry references).
    std::array<Counter *, numDomains> freqChanges{};
    std::array<Counter *, numDomains> relockWindows{};
    std::array<Counter *, numDomains> relockPs{};
    std::array<Counter *, numDomains> decisions{};
    std::array<Histogram *, numDomains> occupancyHist{};
};

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_TELEMETRY_HH
