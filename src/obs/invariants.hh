/**
 * @file
 * Declarative runtime invariants over the telemetry stream.
 *
 * The paper's DVFS models promise physical properties the simulator
 * must never violate: under Transmeta LongRun the voltage settles
 * before a frequency rise is applied (Section 3), queues never exceed
 * their capacity, PLL re-lock windows on one domain never overlap,
 * cumulative energy never decreases, and synchronization dilation
 * stays bounded. Golden-file diffs only catch these indirectly — an
 * InvariantEngine checks them online, at the telemetry hooks where
 * the relevant state changes, and turns every breach into a
 * structured record (rule, domain, tick, observed vs bound).
 *
 * Rules compile from a small spec grammar (MCD_INVARIANTS env,
 * --invariants flag, or an "@file"):
 *
 *     spec   := '@' path | 'default' | '1' | 'on' | rules
 *     rules  := rule (';' rule)*
 *     rule   := 'default'
 *             | 'dilation'          '<=' number
 *             | 'queue_fill'        '<=' (number | 'capacity')
 *             | 'voltage_leads_freq' '==' 'never'
 *             | 'relock_overlap'     '==' 'never'
 *             | 'energy_decreasing'  '==' 'never'
 *             | 'freq_in_table'      '==' 'always'
 *
 * e.g. MCD_INVARIANTS="default" or "dilation<=0.12;queue_fill<=1.0".
 * An '@path' spec reads one rule (or ';'-joined list) per line;
 * '#' starts a comment. 'default' splices in defaultRules(), derived
 * from the paper's Transmeta/XScale models.
 *
 * Violations never abort a run mid-flight: they are counted in the
 * stats registry under invariants.*, recorded (capped), rendered as
 * Chrome-trace instants, and surfaced through RunResult telemetry so
 * the matrix drivers can escalate them to exit code 5 when
 * MCD_INVARIANTS_FATAL is set.
 *
 * Like the rest of the obs layer, one engine belongs to one run (one
 * thread); nothing here is locked.
 */

#ifndef MCD_OBS_INVARIANTS_HH
#define MCD_OBS_INVARIANTS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "clock/operating_points.hh"
#include "common/types.hh"
#include "obs/stats_registry.hh"
#include "obs/time_series.hh"
#include "obs/trace_export.hh"

namespace mcd {
namespace obs {

/** The checkable properties. */
enum class InvariantMetric : std::uint8_t {
    Dilation,           //!< PLL re-lock idle fraction of run time
    QueueFill,          //!< sampled queue fill fraction
    VoltageLeadsFreq,   //!< voltage sufficient for the applied freq
    RelockOverlap,      //!< re-lock windows on one domain are disjoint
    EnergyDecreasing,   //!< cumulative domain energy is monotone
    FreqInTable,        //!< applied frequency within the table range
};

/** Grammar name of a metric ("dilation", "voltage_leads_freq", ...). */
const char *invariantMetricName(InvariantMetric m);

/** One compiled rule. */
struct InvariantRule
{
    InvariantMetric metric = InvariantMetric::Dilation;
    double bound = 0.0;     //!< Dilation / QueueFill upper bound
    std::string text;       //!< canonical spelling ("dilation<=0.25")
};

/** One recorded breach. */
struct InvariantViolation
{
    std::string rule;       //!< canonical rule text
    Domain domain = Domain::FrontEnd;
    Tick tick = 0;
    double observed = 0.0;
    double bound = 0.0;
};

class InvariantEngine
{
  public:
    /**
     * The built-in set: voltage_leads_freq==never,
     * relock_overlap==never, queue_fill<=capacity,
     * energy_decreasing==never, freq_in_table==always, and
     * dilation<=0.5 (generous: the dyn5 oracle targets 5% dilation,
     * but a Transmeta matrix at aggressive time scales can spend far
     * longer re-locking; 0.5 still catches a domain that is idle more
     * than it runs).
     */
    static std::vector<InvariantRule> defaultRules();

    /**
     * Compile a spec string (grammar above; "@path" reads the file).
     * fatal() (FatalError) on malformed input, enumerating the valid
     * metrics — call from config validation to fail fast.
     */
    static std::vector<InvariantRule> parseSpec(const std::string &spec);

    /**
     * @param reg per-rule violation counters register here
     * @param trace optional exporter for violation instant events
     */
    InvariantEngine(std::vector<InvariantRule> rules, StatsRegistry &reg,
                    TraceExporter *trace);

    const std::vector<InvariantRule> &rules() const { return set; }

    // ----- hooks, forwarded by Telemetry -----

    /** Initial per-domain state, before the first edge. */
    void runStart(const std::array<Hertz, numDomains> &freq,
                  const std::array<Volt, numDomains> &volt);

    /** Domain @p d switched to @p f with its rail at @p v. */
    void frequencyChange(Domain d, Tick when, Hertz f, Volt v);

    /** Domain @p d re-locks its PLL over [start, end). */
    void relockWindow(Domain d, Tick start, Tick end);

    /** A periodic telemetry sample. */
    void sample(const TimeSample &s);

    /** End of run: final dilation evaluation at @p execTime. */
    void runEnd(Tick execTime);

    // ----- results -----

    std::uint64_t checks() const { return nChecks->value(); }
    std::uint64_t violations() const { return nViolations->value(); }

    /** Detailed records, capped at @ref maxRecords (counts are not). */
    static constexpr std::size_t maxRecords = 64;
    const std::vector<InvariantViolation> &records() const
    { return breaches; }

  private:
    void violate(std::size_t rule_idx, Domain d, Tick tick,
                 double observed, double bound);
    void checkVoltage(Domain d, Tick when, Hertz f, Volt v);

    std::vector<InvariantRule> set;
    std::vector<Counter *> ruleViolations;  //!< parallel to `set`
    Counter *nChecks = nullptr;
    Counter *nViolations = nullptr;
    TraceExporter *exp = nullptr;

    DvfsTable table;    //!< the paper's default frequency/voltage map

    std::array<Hertz, numDomains> lastFreq{};
    std::array<double, numDomains> lastEnergy{};
    std::array<Tick, numDomains> relockAccum{};     //!< idle ps so far
    std::array<Tick, numDomains> relockPrevEnd{};
    Tick lastRelockEnd = 0;     //!< latest window end seen

    std::vector<InvariantViolation> breaches;
};

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_INVARIANTS_HH
