#include "host_prof.hh"

#include <algorithm>
#include <cstdio>

#include "obs/trace_export.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mcd {
namespace obs {

namespace {

struct PhaseAgg
{
    std::uint64_t count = 0;
    double totalMs = 0.0;
    double maxMs = 0.0;
};

std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

HostProfiler &
HostProfiler::instance()
{
    static HostProfiler p;
    return p;
}

void
HostProfiler::reset(bool enable)
{
    std::lock_guard<std::mutex> lock(mtx);
    slices.clear();
    legs.clear();
    lanes.clear();
    poolWorkers = 0;
    poolTasks = 0;
    poolBusyNs = 0;
    poolWallNs = 0;
    epoch = std::chrono::steady_clock::now();
    on.store(enable, std::memory_order_relaxed);
}

void
HostProfiler::Scope::close()
{
    if (!prof)
        return;
    HostProfiler *p = prof;
    prof = nullptr;
    auto end = std::chrono::steady_clock::now();
    Slice s;
    s.kind = std::move(kind);
    s.detail = std::move(detail);
    s.lane = 0;
    std::chrono::duration<double, std::micro> rel = start - p->epoch;
    std::chrono::duration<double, std::micro> dur = end - start;
    s.startUs = rel.count();
    s.durUs = dur.count();
    p->record(std::move(s));
}

HostProfiler::Scope
HostProfiler::phase(std::string kind, std::string detail)
{
    Scope s;
    if (!enabled())
        return s;
    s.prof = this;
    s.kind = std::move(kind);
    s.detail = std::move(detail);
    s.start = std::chrono::steady_clock::now();
    return s;
}

int
HostProfiler::laneOf(std::thread::id id)
{
    auto it = lanes.find(id);
    if (it != lanes.end())
        return it->second;
    int lane = static_cast<int>(lanes.size());
    lanes.emplace(id, lane);
    return lane;
}

void
HostProfiler::record(Slice s)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (!on.load(std::memory_order_relaxed))
        return;
    s.lane = laneOf(std::this_thread::get_id());
    slices.push_back(std::move(s));
}

void
HostProfiler::noteLeg(const std::string &site, double wall_ms,
                      std::uint64_t rss_kb)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mtx);
    legs.push_back({site, wall_ms, rss_kb});
}

void
HostProfiler::notePool(unsigned workers, std::uint64_t tasks,
                       std::uint64_t busy_ns, std::uint64_t wall_ns)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mtx);
    poolWorkers = workers;
    poolTasks = tasks;
    poolBusyNs = busy_ns;
    poolWallNs = wall_ns;
}

std::uint64_t
HostProfiler::peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
#else
    return 0;
#endif
}

void
HostProfiler::publish(StatsRegistry &reg) const
{
    std::lock_guard<std::mutex> lock(mtx);

    // std::map iteration gives the name-sorted, job-count-independent
    // key order the merged stats JSON requires.
    std::map<std::string, PhaseAgg> agg;
    for (const Slice &s : slices) {
        PhaseAgg &a = agg[s.kind];
        ++a.count;
        double ms = s.durUs / 1e3;
        a.totalMs += ms;
        a.maxMs = std::max(a.maxMs, ms);
    }
    for (const auto &kv : agg) {
        std::string p = "host.phase." + kv.first;
        reg.counter(p + ".count", "host phases of this kind entered")
            .inc(kv.second.count);
        reg.gauge(p + ".total_ms", "wall time summed over the phases")
            .set(kv.second.totalMs);
        reg.gauge(p + ".max_ms", "longest single phase")
            .set(kv.second.maxMs);
    }

    std::map<std::string, const LegTime *> bySite;
    for (const LegTime &l : legs)
        bySite[l.site] = &l;
    for (const auto &kv : bySite) {
        std::string p = "host.leg." + kv.first;
        reg.gauge(p + ".wall_ms", "host wall time simulating the leg")
            .set(kv.second->wallMs);
        reg.gauge(p + ".peak_rss_kb", "process peak RSS after the leg")
            .set(static_cast<double>(kv.second->rssKb));
    }

    reg.gauge("host.peak_rss_kb", "process peak resident set size")
        .set(static_cast<double>(peakRssKb()));

    if (poolWallNs) {
        reg.gauge("host.pool.workers", "pool worker threads")
            .set(static_cast<double>(poolWorkers));
        reg.counter("host.pool.tasks", "tasks the pool executed")
            .inc(poolTasks);
        reg.gauge("host.pool.busy_ms", "worker time spent in tasks")
            .set(static_cast<double>(poolBusyNs) / 1e6);
        // The helping main thread also runs tasks, so a saturated
        // matrix can honestly exceed 1.0.
        double denom = static_cast<double>(poolWallNs) *
            std::max(1u, poolWorkers);
        reg.gauge("host.pool.utilization",
                  "busy time / (wall time * workers)")
            .set(static_cast<double>(poolBusyNs) / denom);
    }
}

void
HostProfiler::writeProfile(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mtx);

    std::vector<const Slice *> ordered;
    ordered.reserve(slices.size());
    for (const Slice &s : slices)
        ordered.push_back(&s);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Slice *a, const Slice *b) {
                         if (a->startUs != b->startUs)
                             return a->startUs < b->startUs;
                         return a->lane < b->lane;
                     });

    os << "{\n  \"traceEvents\": [\n";
    os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"host\"}}";
    std::vector<int> laneIds;
    for (const auto &kv : lanes)
        laneIds.push_back(kv.second);
    std::sort(laneIds.begin(), laneIds.end());
    for (int lane : laneIds) {
        os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": " << lane
           << ", \"args\": {\"name\": \"host " << lane << "\"}}";
    }
    for (const Slice *s : ordered) {
        os << ",\n    {\"name\": \"" << jsonEscape(s->kind)
           << "\", \"cat\": \"host\", \"ph\": \"X\", \"pid\": 1, "
              "\"tid\": " << s->lane
           << ", \"ts\": " << fmt(s->startUs)
           << ", \"dur\": " << fmt(s->durUs);
        if (!s->detail.empty()) {
            os << ", \"args\": {\"detail\": \"" << jsonEscape(s->detail)
               << "\"}";
        }
        os << "}";
    }
    os << "\n  ],\n";

    std::map<std::string, PhaseAgg> agg;
    for (const Slice &s : slices) {
        PhaseAgg &a = agg[s.kind];
        ++a.count;
        double ms = s.durUs / 1e3;
        a.totalMs += ms;
        a.maxMs = std::max(a.maxMs, ms);
    }
    os << "  \"host\": {\n    \"phases\": {";
    bool first = true;
    for (const auto &kv : agg) {
        os << (first ? "\n" : ",\n") << "      \"" << jsonEscape(kv.first)
           << "\": {\"count\": " << kv.second.count
           << ", \"totalMs\": " << fmt(kv.second.totalMs)
           << ", \"maxMs\": " << fmt(kv.second.maxMs) << "}";
        first = false;
    }
    os << "\n    },\n    \"legs\": [";
    std::map<std::string, const LegTime *> bySite;
    for (const LegTime &l : legs)
        bySite[l.site] = &l;
    first = true;
    for (const auto &kv : bySite) {
        os << (first ? "\n" : ",\n") << "      {\"site\": \""
           << jsonEscape(kv.first)
           << "\", \"wallMs\": " << fmt(kv.second->wallMs)
           << ", \"peakRssKb\": " << kv.second->rssKb << "}";
        first = false;
    }
    os << "\n    ],\n    \"pool\": {\"workers\": " << poolWorkers
       << ", \"tasks\": " << poolTasks
       << ", \"busyMs\": " << fmt(static_cast<double>(poolBusyNs) / 1e6)
       << ", \"wallMs\": " << fmt(static_cast<double>(poolWallNs) / 1e6)
       << "},\n    \"peakRssKb\": " << peakRssKb()
       << "\n  }\n}\n";
}

} // namespace obs
} // namespace mcd
