/**
 * @file
 * Host-side run profiler: where does the *host* process spend wall
 * time and memory while driving an experiment matrix?
 *
 * The simulator's own telemetry (obs/telemetry.hh) measures simulated
 * time; nothing so far measured the machine running it beyond one
 * micro_speed number. The HostProfiler records scoped phases
 * (validate, per-leg simulate, cache read/write, schedule analysis,
 * figure render), per-leg wall time and peak RSS, and ThreadPool
 * utilization, then publishes two views:
 *
 *  - publish(): aggregated, deterministically ordered host.* stats
 *    merged into the matrix stats JSON (keys are stable across job
 *    counts; the measured values naturally are not),
 *  - writeProfile(): a standalone Chrome trace (MCD_PROF_OUT) with
 *    one "host" process, one thread lane per host thread, and a
 *    machine-readable "host" summary object.
 *
 * Unlike the per-run Telemetry, host phases run concurrently on pool
 * threads, so this is the one obs component that locks. It is a
 * process-wide singleton, disabled (and cheap: one relaxed atomic
 * load per scope) unless runMatrix arms it from MCD_PROF_OUT.
 */

#ifndef MCD_OBS_HOST_PROF_HH
#define MCD_OBS_HOST_PROF_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats_registry.hh"

namespace mcd {
namespace obs {

class HostProfiler
{
  public:
    /** The process-wide profiler. */
    static HostProfiler &instance();

    /**
     * Drop all recorded data and arm (or disarm) collection. The call
     * also restarts the trace epoch: slice timestamps are relative to
     * the most recent reset.
     */
    void reset(bool enable);

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * One recorded phase, closed when the Scope dies. Default-built
     * or moved-from Scopes record nothing, as does any Scope taken
     * while the profiler is disabled.
     */
    class Scope
    {
      public:
        Scope() = default;
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        Scope(Scope &&o) noexcept { *this = std::move(o); }
        Scope &
        operator=(Scope &&o) noexcept
        {
            close();
            prof = o.prof;
            o.prof = nullptr;
            kind = std::move(o.kind);
            detail = std::move(o.detail);
            start = o.start;
            return *this;
        }
        ~Scope() { close(); }

      private:
        friend class HostProfiler;
        void close();

        HostProfiler *prof = nullptr;
        std::string kind;
        std::string detail;
        std::chrono::steady_clock::time_point start;
    };

    /**
     * Open a phase of @p kind ("validate", "simulate", "cache.read",
     * "cache.write", "analyze", "render") with an optional free-form
     * @p detail (typically the leg site or figure title).
     */
    Scope phase(std::string kind, std::string detail = {});

    /** Record one finished leg's wall time and the RSS after it. */
    void noteLeg(const std::string &site, double wall_ms,
                 std::uint64_t rss_kb);

    /**
     * Record ThreadPool totals for the matrix: @p busy_ns is summed
     * across workers, @p wall_ns is the matrix wall time. Utilization
     * is busy/(wall*workers); the helping main thread also executes
     * tasks, so values slightly above 1.0 are possible and honest.
     */
    void notePool(unsigned workers, std::uint64_t tasks,
                  std::uint64_t busy_ns, std::uint64_t wall_ns);

    /** Process peak RSS in KiB (getrusage), 0 where unsupported. */
    static std::uint64_t peakRssKb();

    /**
     * Merge aggregated host.* stats into @p reg: per-kind phase
     * count/total/max, per-leg wall and RSS, pool utilization, peak
     * RSS. Key set and order depend only on the recorded names.
     */
    void publish(StatsRegistry &reg) const;

    /** Write the standalone Chrome-trace profile (MCD_PROF_OUT). */
    void writeProfile(std::ostream &os) const;

  private:
    HostProfiler() = default;

    struct Slice
    {
        std::string kind;
        std::string detail;
        int lane;
        double startUs;
        double durUs;
    };

    struct LegTime
    {
        std::string site;
        double wallMs;
        std::uint64_t rssKb;
    };

    void record(Slice s);
    int laneOf(std::thread::id id);

    std::atomic<bool> on{false};
    mutable std::mutex mtx;
    std::chrono::steady_clock::time_point epoch;
    std::map<std::thread::id, int> lanes;
    std::vector<Slice> slices;
    std::vector<LegTime> legs;
    unsigned poolWorkers = 0;
    std::uint64_t poolTasks = 0;
    std::uint64_t poolBusyNs = 0;
    std::uint64_t poolWallNs = 0;
};

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_HOST_PROF_HH
