/**
 * @file
 * Per-domain time-series telemetry for one simulated run.
 *
 * Two kinds of data with different time semantics:
 *
 *  - Periodic samples: at a configurable tick period the simulator
 *    snapshots every domain's frequency, voltage, queue occupancy,
 *    and cumulative energy. Sampling is edge-aligned: a sample is
 *    taken at the first clock edge at or after each period multiple,
 *    and a long edge-free gap yields one catch-up sample (periods
 *    with no edges have no observable state changes).
 *
 *  - Frequency series: the exact (time, frequency) points of every
 *    frequency change, per domain — event-driven, not decimated, so
 *    the paper's Figure 8 traces reconstruct from telemetry exactly
 *    as the legacy per-engine recording produced them.
 */

#ifndef MCD_OBS_TIME_SERIES_HH
#define MCD_OBS_TIME_SERIES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mcd {
namespace obs {

/** One periodic snapshot of all domains. */
struct TimeSample
{
    Tick when = 0;
    std::array<Hertz, numDomains> frequency{};
    std::array<Volt, numDomains> voltage{};
    std::array<double, numDomains> occupancy{};  //!< queue fill [0, 1]
    std::array<double, numDomains> energy{};     //!< cumulative joules
};

class TimeSeriesSampler
{
  public:
    /** nextDue() value when periodic sampling is disabled. */
    static constexpr Tick never = ~Tick{0};

    TimeSeriesSampler() = default;

    /** @param period_ps sampling period; 0 disables periodic samples */
    explicit TimeSeriesSampler(Tick period_ps)
        : per(period_ps), next(period_ps)
    {}

    bool enabled() const { return per != 0; }
    Tick period() const { return per; }

    /** Earliest tick at which the next sample is due. */
    Tick nextDue() const { return enabled() ? next : never; }

    /** Is a periodic sample due at edge time @p now? */
    bool due(Tick now) const { return enabled() && now >= next; }

    /**
     * Record a sample and advance the due time past s.when: one
     * sample per call regardless of how many whole periods elapsed.
     */
    void
    record(const TimeSample &s)
    {
        points.push_back(s);
        do {
            next += per;
        } while (next <= s.when);
    }

    const std::vector<TimeSample> &samples() const { return points; }

    /** Append an exact frequency-change point for domain @p d. */
    void
    noteFrequency(Domain d, Tick when, Hertz f)
    {
        series[domainIndex(d)].push_back({when, f});
    }

    /** The exact per-domain frequency series (Figure 8). */
    const std::vector<FreqTracePoint> &
    frequencyTrace(Domain d) const
    {
        return series[domainIndex(d)];
    }

  private:
    Tick per = 0;
    Tick next = 0;
    std::vector<TimeSample> points;
    std::array<std::vector<FreqTracePoint>, numDomains> series;
};

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_TIME_SERIES_HH
