/**
 * @file
 * The simulator's stats registry: named, hierarchically grouped
 * counters, gauges, and histograms.
 *
 * Components register stats once (at construction or attach time) and
 * keep the returned reference; the hot-loop cost of an update is one
 * integer add. Names are dotted paths ("clock.int.freq_changes",
 * "pipeline.sync.commit_stalls"), so consumers can iterate a whole
 * group with withPrefix() without the registry imposing a tree
 * structure on the producers.
 *
 * One registry belongs to one simulated run (one thread); per-leg
 * registries from a parallel experiment matrix are combined with
 * merge(), which is how the PR 1 thread pool stays race-free: no stat
 * is ever shared across threads.
 */

#ifndef MCD_OBS_STATS_REGISTRY_HH
#define MCD_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/stats.hh"

namespace mcd {
namespace obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { val += n; }
    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/** Last-value instantaneous measurement. */
class Gauge
{
  public:
    void set(double v) { val = v; }
    void add(double v) { val += v; }
    double value() const { return val; }

  private:
    double val = 0.0;
};

/**
 * A fixed-bucket histogram: explicit ascending upper bounds plus an
 * implicit overflow bucket, with a RunningStat summary of the raw
 * series. Bucket i counts values v with v <= upperBound(i) (and
 * v > upperBound(i-1) for i > 0); the last bucket catches everything
 * above the largest bound.
 */
class Histogram
{
  public:
    Histogram() : counts(1, 0) {}
    explicit Histogram(std::vector<double> upper_bounds);

    void add(double v);

    std::size_t numBuckets() const { return counts.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts[i]; }
    /** Upper bound of bucket @p i (+inf for the overflow bucket). */
    double upperBound(std::size_t i) const;
    const std::vector<double> &bounds() const { return ubounds; }

    /** count/sum/mean/min/max of the raw series. */
    const RunningStat &summary() const { return stats; }

    /**
     * Estimated @p q-quantile (q in [0, 1]) of the recorded series,
     * interpolated linearly within the bucket that holds it; the edge
     * buckets use the observed min/max instead of -inf/+inf, and the
     * result is clamped to [min, max]. NaN when empty.
     */
    double quantile(double q) const;

    /** Combine another histogram with identical bounds. */
    void merge(const Histogram &other);

  private:
    std::vector<double> ubounds;
    std::vector<std::uint64_t> counts;  //!< ubounds.size() + 1 entries
    RunningStat stats;
};

/** What a registry entry holds. */
enum class StatKind : std::uint8_t { Counter, Gauge, Histogram };

/**
 * The registry. Registration is idempotent: asking for an existing
 * name returns the existing stat (a kind mismatch is a fatal usage
 * error). Entry storage is a deque, so returned references stay valid
 * for the registry's lifetime.
 */
class StatsRegistry
{
  public:
    struct Entry
    {
        std::string name;
        std::string desc;
        std::variant<Counter, Gauge, Histogram> stat;

        StatKind kind() const
        { return static_cast<StatKind>(stat.index()); }
    };

    Counter &counter(const std::string &name, std::string desc = {});
    Gauge &gauge(const std::string &name, std::string desc = {});
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds,
                         std::string desc = {});

    /** Lookup by exact name; nullptr when absent. */
    const Entry *find(std::string_view name) const;

    /**
     * All entries whose dotted name lies under @p prefix ("clock"
     * matches "clock.int.x" but not "clocking"), in registration
     * order. An exact-name match is included too.
     */
    std::vector<const Entry *> withPrefix(std::string_view prefix) const;

    /** Entries in registration order. */
    const std::deque<Entry> &entries() const { return items; }
    std::size_t size() const { return items.size(); }

    /**
     * Fold another registry in, by name: counters add, histograms
     * merge bucket-wise, gauges take the other's (later) value.
     * Entries missing here are created in the other's kind, keeping
     * the result independent of which per-thread shard merges first
     * for counters and histograms.
     */
    void merge(const StatsRegistry &other);

    /**
     * Emit the registry as one JSON object, entries in registration
     * order. @p indent prefixes every line after the opening brace.
     */
    void writeJson(std::ostream &os, const char *indent = "") const;

  private:
    Entry &getOrCreate(const std::string &name, std::string desc,
                       StatKind kind, std::vector<double> bounds = {});

    std::deque<Entry> items;
    std::unordered_map<std::string, std::size_t> index;
};

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_STATS_REGISTRY_HH
