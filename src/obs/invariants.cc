#include "invariants.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace mcd {
namespace obs {

namespace {

// Comparison slack. Voltage levels quantize upward (DomainDvfs uses a
// ceil with its own 1e-9 slack), so a clean run's rail can sit within
// rounding noise of the exact linear-map voltage; everything else is
// exact arithmetic guarded against representation error only.
constexpr double voltEps = 1e-6;
constexpr double fillEps = 1e-9;
constexpr double energyEps = 1e-12;

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return {};
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
badRule(const std::string &rule, const char *why)
{
    fatal("MCD_INVARIANTS: bad rule '" + rule + "': " + why +
          " (grammar: default | dilation<=F | queue_fill<=F|capacity | "
          "voltage_leads_freq==never | relock_overlap==never | "
          "energy_decreasing==never | freq_in_table==always; "
          "rules joined by ';', or @file with one rule per line)");
}

InvariantRule
makeRule(InvariantMetric m, double bound)
{
    InvariantRule r;
    r.metric = m;
    r.bound = bound;
    switch (m) {
      case InvariantMetric::Dilation:
      case InvariantMetric::QueueFill: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s<=%g",
                      invariantMetricName(m), bound);
        r.text = buf;
        break;
      }
      case InvariantMetric::FreqInTable:
        r.text = std::string(invariantMetricName(m)) + "==always";
        break;
      default:
        r.text = std::string(invariantMetricName(m)) + "==never";
        break;
    }
    return r;
}

void
parseRule(const std::string &raw, std::vector<InvariantRule> &out)
{
    const std::string rule = trimmed(raw);
    if (rule.empty())
        return;
    if (rule == "default" || rule == "1" || rule == "on") {
        std::vector<InvariantRule> defs = InvariantEngine::defaultRules();
        out.insert(out.end(), defs.begin(), defs.end());
        return;
    }

    std::size_t le = rule.find("<=");
    std::size_t eq = rule.find("==");
    if (le != std::string::npos) {
        std::string name = trimmed(rule.substr(0, le));
        std::string val = trimmed(rule.substr(le + 2));
        InvariantMetric m;
        if (name == invariantMetricName(InvariantMetric::Dilation))
            m = InvariantMetric::Dilation;
        else if (name == invariantMetricName(InvariantMetric::QueueFill))
            m = InvariantMetric::QueueFill;
        else
            badRule(rule, "only dilation and queue_fill take '<='");
        double bound;
        if (m == InvariantMetric::QueueFill && val == "capacity") {
            bound = 1.0;
        } else {
            char *end = nullptr;
            bound = std::strtod(val.c_str(), &end);
            if (!end || *end || val.empty())
                badRule(rule, "bound must be a number");
        }
        if (!std::isfinite(bound) || bound < 0.0)
            badRule(rule, "bound must be finite and >= 0");
        out.push_back(makeRule(m, bound));
        return;
    }
    if (eq != std::string::npos) {
        std::string name = trimmed(rule.substr(0, eq));
        std::string val = trimmed(rule.substr(eq + 2));
        InvariantMetric m;
        bool wantAlways = false;
        if (name ==
            invariantMetricName(InvariantMetric::VoltageLeadsFreq)) {
            m = InvariantMetric::VoltageLeadsFreq;
        } else if (name ==
                   invariantMetricName(InvariantMetric::RelockOverlap)) {
            m = InvariantMetric::RelockOverlap;
        } else if (name ==
                   invariantMetricName(
                       InvariantMetric::EnergyDecreasing)) {
            m = InvariantMetric::EnergyDecreasing;
        } else if (name ==
                   invariantMetricName(InvariantMetric::FreqInTable)) {
            m = InvariantMetric::FreqInTable;
            wantAlways = true;
        } else {
            badRule(rule, "unknown metric");
        }
        if (val != (wantAlways ? "always" : "never")) {
            badRule(rule, wantAlways ? "freq_in_table takes '==always'"
                                     : "this metric takes '==never'");
        }
        out.push_back(makeRule(m, 0.0));
        return;
    }
    badRule(rule, "expected '<=' or '=='");
}

} // namespace

const char *
invariantMetricName(InvariantMetric m)
{
    switch (m) {
      case InvariantMetric::Dilation: return "dilation";
      case InvariantMetric::QueueFill: return "queue_fill";
      case InvariantMetric::VoltageLeadsFreq: return "voltage_leads_freq";
      case InvariantMetric::RelockOverlap: return "relock_overlap";
      case InvariantMetric::EnergyDecreasing: return "energy_decreasing";
      case InvariantMetric::FreqInTable: return "freq_in_table";
    }
    return "?";
}

std::vector<InvariantRule>
InvariantEngine::defaultRules()
{
    std::vector<InvariantRule> out;
    out.push_back(makeRule(InvariantMetric::VoltageLeadsFreq, 0.0));
    out.push_back(makeRule(InvariantMetric::RelockOverlap, 0.0));
    out.push_back(makeRule(InvariantMetric::QueueFill, 1.0));
    out.push_back(makeRule(InvariantMetric::EnergyDecreasing, 0.0));
    out.push_back(makeRule(InvariantMetric::FreqInTable, 0.0));
    out.push_back(makeRule(InvariantMetric::Dilation, 0.5));
    return out;
}

std::vector<InvariantRule>
InvariantEngine::parseSpec(const std::string &spec)
{
    std::vector<InvariantRule> out;
    std::string body = trimmed(spec);
    if (body.empty())
        return out;

    if (body[0] == '@') {
        std::ifstream in(body.substr(1));
        if (!in) {
            fatal("MCD_INVARIANTS: cannot read spec file '" +
                  body.substr(1) + "'");
        }
        std::string line;
        while (std::getline(in, line)) {
            std::size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::string item;
            std::istringstream ls(line);
            while (std::getline(ls, item, ';'))
                parseRule(item, out);
        }
        if (out.empty())
            fatal("MCD_INVARIANTS: spec file '" + body.substr(1) +
                  "' contains no rules");
        return out;
    }

    std::string item;
    std::istringstream ss(body);
    while (std::getline(ss, item, ';'))
        parseRule(item, out);
    if (out.empty())
        badRule(spec, "no rules in spec");
    return out;
}

InvariantEngine::InvariantEngine(std::vector<InvariantRule> rules,
                                 StatsRegistry &reg, TraceExporter *trace)
    : set(std::move(rules)), exp(trace)
{
    nChecks = &reg.counter("invariants.checks",
                           "invariant evaluations performed");
    nViolations = &reg.counter("invariants.violations",
                               "invariant evaluations that failed");
    ruleViolations.reserve(set.size());
    for (const InvariantRule &r : set) {
        ruleViolations.push_back(&reg.counter(
            std::string("invariants.violations.") +
                invariantMetricName(r.metric),
            "violations of " + r.text));
    }
    for (int d = 0; d < numDomains; ++d)
        relockPrevEnd[d] = 0;
}

void
InvariantEngine::violate(std::size_t rule_idx, Domain d, Tick tick,
                         double observed, double bound)
{
    const InvariantRule &r = set[rule_idx];
    nViolations->inc();
    ruleViolations[rule_idx]->inc();
    if (breaches.size() < maxRecords)
        breaches.push_back({r.text, d, tick, observed, bound});
    if (exp && exp->enabled()) {
        char args[160];
        std::snprintf(args, sizeof(args),
                      "\"rule\": \"%s\", \"observed\": %.17g, "
                      "\"bound\": %.17g",
                      r.text.c_str(), observed, bound);
        exp->instant("invariant violation: " +
                         std::string(invariantMetricName(r.metric)),
                     "invariant", domainIndex(d), tick, args);
    }
}

void
InvariantEngine::checkVoltage(Domain d, Tick when, Hertz f, Volt v)
{
    double required = table.voltageFor(f);
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].metric != InvariantMetric::VoltageLeadsFreq)
            continue;
        nChecks->inc();
        if (v + voltEps < required)
            violate(i, d, when, v, required);
    }
}

void
InvariantEngine::runStart(const std::array<Hertz, numDomains> &freq,
                          const std::array<Volt, numDomains> &volt)
{
    lastFreq = freq;
    for (int d = 0; d < numDomains; ++d)
        checkVoltage(static_cast<Domain>(d), 0, freq[d], volt[d]);
}

void
InvariantEngine::frequencyChange(Domain d, Tick when, Hertz f, Volt v)
{
    int di = domainIndex(d);
    lastFreq[di] = f;
    checkVoltage(d, when, f, v);
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].metric != InvariantMetric::FreqInTable)
            continue;
        nChecks->inc();
        double slack = table.maxFrequency() * 1e-9;
        if (f < table.minFrequency() - slack ||
            f > table.maxFrequency() + slack) {
            violate(i, d, when, f, table.maxFrequency());
        }
    }
}

void
InvariantEngine::relockWindow(Domain d, Tick start, Tick end)
{
    int di = domainIndex(d);
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].metric != InvariantMetric::RelockOverlap)
            continue;
        nChecks->inc();
        if (start < relockPrevEnd[di]) {
            violate(i, d, start,
                    static_cast<double>(relockPrevEnd[di] - start), 0.0);
        }
    }
    relockAccum[di] += end - start;
    relockPrevEnd[di] = std::max(relockPrevEnd[di], end);
    lastRelockEnd = std::max(lastRelockEnd, end);
}

void
InvariantEngine::sample(const TimeSample &s)
{
    for (std::size_t i = 0; i < set.size(); ++i) {
        switch (set[i].metric) {
          case InvariantMetric::QueueFill:
            for (int d = 0; d < numDomains; ++d) {
                nChecks->inc();
                if (s.occupancy[d] > set[i].bound + fillEps) {
                    violate(i, static_cast<Domain>(d), s.when,
                            s.occupancy[d], set[i].bound);
                }
            }
            break;
          case InvariantMetric::EnergyDecreasing:
            for (int d = 0; d < numDomains; ++d) {
                nChecks->inc();
                if (s.energy[d] < lastEnergy[d] - energyEps) {
                    violate(i, static_cast<Domain>(d), s.when,
                            s.energy[d], lastEnergy[d]);
                }
            }
            break;
          case InvariantMetric::VoltageLeadsFreq:
            // Mid-ramp coverage between frequency-change events.
            for (int d = 0; d < numDomains; ++d) {
                nChecks->inc();
                double required = table.voltageFor(s.frequency[d]);
                if (s.voltage[d] + voltEps < required) {
                    violate(i, static_cast<Domain>(d), s.when,
                            s.voltage[d], required);
                }
            }
            break;
          default:
            break;
        }
    }
    for (int d = 0; d < numDomains; ++d)
        lastEnergy[d] = s.energy[d];
}

void
InvariantEngine::runEnd(Tick execTime)
{
    // Dilation is evaluated once, over the whole run: early in a run
    // a single re-lock window dominates the elapsed time and a
    // cumulative online check would trip spuriously. A run can end
    // (last commit) before its last re-lock window closes, so the
    // elapsed time covers both.
    Tick elapsed = std::max(execTime, lastRelockEnd);
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].metric != InvariantMetric::Dilation)
            continue;
        for (int d = 0; d < numDomains; ++d) {
            if (!relockAccum[d])
                continue;
            nChecks->inc();
            double frac = elapsed
                ? static_cast<double>(relockAccum[d]) /
                      static_cast<double>(elapsed)
                : 0.0;
            if (frac > set[i].bound) {
                violate(i, static_cast<Domain>(d), execTime, frac,
                        set[i].bound);
            }
        }
    }
}

} // namespace obs
} // namespace mcd
