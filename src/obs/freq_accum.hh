/**
 * @file
 * Time-weighted frequency accumulation shared by the run loop and the
 * telemetry sampler's frequency series.
 *
 * The per-domain clock-edge actors feed one accumulator each (the
 * bookkeeping that used to live inline in McdProcessor::run), and the
 * same arithmetic reconstructs a summary from a sampler
 * FreqTracePoint series via fromSeries() — so tests can check the
 * event-driven telemetry stream against the run summary through one
 * definition of "average frequency".
 */

#ifndef MCD_OBS_FREQ_ACCUM_HH
#define MCD_OBS_FREQ_ACCUM_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace mcd {
namespace obs {

class FreqAccumulator
{
  public:
    FreqAccumulator() = default;

    /** Begin accumulating at @p first_edge with frequency @p f. */
    FreqAccumulator(Tick first_edge, Hertz f)
        : first(first_edge), prev(first_edge), minF(f), maxF(f), lastF(f)
    {}

    /**
     * Note one processed clock edge at @p t where the domain runs at
     * @p f (the frequency in force after the edge's DVFS service).
     * The interval since the previous edge is weighted with @p f —
     * term order matters for bit-reproducible sums, so this is a
     * strict per-edge accumulation, never batched.
     */
    void
    edge(Tick t, Hertz f)
    {
        sum += f * static_cast<double>(t - prev);
        prev = t;
        minF = std::min(minF, f);
        maxF = std::max(maxF, f);
        lastF = f;
    }

    /** Edge-time span covered so far. */
    Tick span() const { return prev - first; }

    /**
     * Time-weighted mean frequency over the covered span; with no
     * span yet (zero or one edge), the current frequency.
     */
    Hertz
    average() const
    {
        Tick s = span();
        return s ? sum / static_cast<double>(s) : lastF;
    }

    Hertz minimum() const { return minF; }
    Hertz maximum() const { return maxF; }
    Tick firstEdge() const { return first; }
    Tick lastEdge() const { return prev; }

    /**
     * Rebuild a summary from a sampler frequency series: @p initial
     * is the frequency in force at @p start, and each trace point
     * switches the frequency from its timestamp on. The window is
     * closed at @p end. Points outside [start, end] clamp.
     */
    static FreqAccumulator
    fromSeries(Hertz initial, const std::vector<FreqTracePoint> &series,
               Tick start, Tick end)
    {
        FreqAccumulator a(start, initial);
        Hertz cur = initial;
        for (const FreqTracePoint &p : series) {
            if (p.when <= start) {
                cur = p.frequency;
                a.minF = std::min(a.minF, cur);
                a.maxF = std::max(a.maxF, cur);
                a.lastF = cur;
                continue;
            }
            Tick at = std::min(p.when, end);
            a.edge(at, cur);
            cur = p.frequency;
            a.minF = std::min(a.minF, cur);
            a.maxF = std::max(a.maxF, cur);
            a.lastF = cur;
            if (p.when >= end)
                break;
        }
        if (a.prev < end)
            a.edge(end, cur);
        return a;
    }

  private:
    Tick first = 0;
    Tick prev = 0;
    double sum = 0.0;
    Hertz minF = 0.0;
    Hertz maxF = 0.0;
    Hertz lastF = 0.0;
};

} // namespace obs
} // namespace mcd

#endif // MCD_OBS_FREQ_ACCUM_HH
