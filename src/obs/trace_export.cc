#include "trace_export.hh"

#include <cstdio>
#include <ostream>

namespace mcd {
namespace obs {

void
TraceExporter::complete(std::string name, std::string category, int tid,
                        Tick start, Tick dur, std::string args)
{
    if (!on)
        return;
    TraceEvent e;
    e.phase = 'X';
    e.tid = tid;
    e.ts = start;
    e.dur = dur;
    e.name = std::move(name);
    e.category = std::move(category);
    e.args = std::move(args);
    evts.push_back(std::move(e));
}

void
TraceExporter::instant(std::string name, std::string category, int tid,
                       Tick ts, std::string args)
{
    if (!on)
        return;
    TraceEvent e;
    e.phase = 'i';
    e.tid = tid;
    e.ts = ts;
    e.name = std::move(name);
    e.category = std::move(category);
    e.args = std::move(args);
    evts.push_back(std::move(e));
}

void
TraceExporter::counter(std::string name, const char *series, int tid,
                       Tick ts, double value)
{
    if (!on)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.17g", series, value);
    TraceEvent e;
    e.phase = 'C';
    e.tid = tid;
    e.ts = ts;
    e.name = std::move(name);
    e.args = buf;
    evts.push_back(std::move(e));
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Picoseconds to the trace's microsecond axis, full precision. */
std::string
tsMicros(Tick ps)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(ps / 1'000'000),
                  static_cast<unsigned long long>(ps % 1'000'000));
    return buf;
}

void
writeMetadata(std::ostream &os, bool &first, int pid, int tid,
              const char *kind, const std::string &value)
{
    os << (first ? "" : ",") << "\n  {\"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": " << tid << ", \"name\": \"" << kind
       << "\", \"args\": {\"name\": \"" << jsonEscape(value) << "\"}}";
    first = false;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceProcess> &processes)
{
    os << "{\n\"traceEvents\": [";
    bool first = true;
    for (std::size_t p = 0; p < processes.size(); ++p) {
        const TraceProcess &proc = processes[p];
        int pid = static_cast<int>(p) + 1;
        writeMetadata(os, first, pid, 0, "process_name", proc.name);
        for (int d = 0; d < numDomains; ++d) {
            writeMetadata(os, first, pid, d, "thread_name",
                          domainName(static_cast<Domain>(d)));
        }
        if (!proc.trace)
            continue;
        for (const TraceEvent &e : proc.trace->events()) {
            os << (first ? "" : ",") << "\n  {\"ph\": \"" << e.phase
               << "\", \"pid\": " << pid << ", \"tid\": " << e.tid
               << ", \"ts\": " << tsMicros(e.ts);
            first = false;
            if (e.phase == 'X')
                os << ", \"dur\": " << tsMicros(e.dur);
            if (e.phase == 'i')
                os << ", \"s\": \"t\"";
            os << ", \"name\": \"" << jsonEscape(e.name) << "\"";
            if (!e.category.empty())
                os << ", \"cat\": \"" << jsonEscape(e.category) << "\"";
            if (!e.args.empty())
                os << ", \"args\": {" << e.args << "}";
            os << "}";
        }
    }
    os << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
}

} // namespace obs
} // namespace mcd
