/**
 * @file
 * Deterministic fault injection for the simulation stack.
 *
 * A FaultPlan names the failures one process run should suffer, so
 * every recovery path in the experiment engine — per-leg isolation,
 * bounded retry, the no-progress watchdog, cache quarantine — can be
 * exercised on demand and reproducibly. Plans are pure data: whether
 * a site fires depends only on (site, attempt), never on thread
 * interleaving, so an injected matrix is bit-identical for any
 * MCD_JOBS value.
 *
 * Spec grammar (MCD_FAULT_PLAN or ExperimentConfig::faults):
 *
 *     plan   := item (';' item)*
 *     item   := 'seed=' N
 *             | 'leg:' bench '/' leg '=' legact
 *             | 'cache:' bench '=' cacheact
 *     legact := 'throw' | 'flaky' [':' k] | 'stall' | 'vfmisorder'
 *     cacheact := 'truncate' | 'corrupt'
 *
 * e.g. MCD_FAULT_PLAN="leg:adpcm/dyn1=throw;cache:mst=truncate"
 *
 *  - throw:    the leg fails permanently (every attempt).
 *  - flaky:k   the leg's first k attempts fail with a *transient*
 *              fault (default 1); the experiment engine's bounded
 *              retry should recover it.
 *  - stall:    the leg's simulation stops making commit progress, so
 *              the McdProcessor watchdog must convert it into a
 *              structured error (pair with MCD_WATCHDOG_EDGES).
 *  - vfmisorder: the leg's DVFS engines apply frequency rises before
 *              the voltage ramp (DomainDvfs::injectVfMisorder), the
 *              hazard the voltage_leads_freq invariant catches — the
 *              leg completes, with violations on its telemetry.
 *  - truncate / corrupt: damage the benchmark's on-disk experiment
 *              cache file before it is read, forcing the checksum
 *              check and quarantine path.
 *
 * Leg names follow the matrix columns: baseline, mcdBaseline, dyn1,
 * dyn5, global, online.
 */

#ifndef MCD_FAULT_FAULT_PLAN_HH
#define MCD_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcd {
namespace fault {

/** What an armed fault site does when reached. */
enum class FaultKind : std::uint8_t {
    Throw,          //!< leg fails on every attempt
    Flaky,          //!< leg fails on the first `count` attempts
    Stall,          //!< simulation stops committing (watchdog food)
    VfMisorder,     //!< freq rises apply before the voltage ramp
    TruncateCache,  //!< cache file loses its tail before the read
    CorruptCache,   //!< cache file payload bytes are flipped
};

const char *faultKindName(FaultKind k);

/** Thrown at an armed leg site; transient faults may be retried. */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(const std::string &site, bool transient_);

    const std::string &site() const { return where; }
    bool transient() const { return isTransient; }

  private:
    std::string where;
    bool isTransient;
};

/** One armed site of a plan. */
struct FaultSpec
{
    std::string site;       //!< "bench/leg" or bench name (cache kinds)
    FaultKind kind = FaultKind::Throw;
    int count = 1;          //!< Flaky: attempts that fail
};

class FaultPlan
{
  public:
    /** Parse a spec string; fatal() (FatalError) on malformed input.
     *  The faultPlan option (MCD_FAULT_PLAN / --fault-plan) reaches
     *  runs through runMatrix()'s effective-config resolution, which
     *  parses the option value with this. */
    static FaultPlan parse(const std::string &spec);

    bool empty() const { return armed.empty(); }
    const std::vector<FaultSpec> &specs() const { return armed; }

    /**
     * Canonical spec string, exactly round-tripping through parse():
     * armed sites in plan order, then seed=N when it differs from the
     * default. Flaky emits its :k count only when not 1 (parse()'s
     * default). The fuzz shrinker serializes minimized plans with
     * this, so the round-trip is a hard contract, not best-effort.
     */
    std::string toSpec() const;

    /** Reserved for future stochastic plans (determinism contract). */
    std::uint64_t seed() const { return rngSeed; }

    /**
     * Leg fault point. Throws InjectedFault when the plan arms a
     * Throw here, or a Flaky whose count covers this (1-based)
     * attempt. Purely a function of (site, attempt): deterministic
     * under any job count.
     */
    void onLegAttempt(const std::string &site, int attempt) const;

    /** True when the plan stalls the simulation of leg @p site. */
    bool stallsLeg(const std::string &site) const;

    /** True when the plan mis-orders V/f transitions of leg @p site. */
    bool misordersLeg(const std::string &site) const;

    /** True when any leg of @p bench has a Throw/Flaky/Stall armed. */
    bool legFaultsFor(const std::string &bench) const;

    /** Cache damage armed for @p bench's cache file, if any. */
    std::optional<FaultKind> cacheFault(const std::string &bench) const;

  private:
    const FaultSpec *findLeg(const std::string &site,
                             FaultKind kind) const;

    std::vector<FaultSpec> armed;
    std::uint64_t rngSeed = 1;
};

/**
 * Damage the file at @p path in place: TruncateCache halves it,
 * CorruptCache flips bytes in the middle. Returns false when the file
 * does not exist or cannot be rewritten. Used by the cache layer to
 * apply a plan's cache faults and by tests directly.
 */
bool damageFile(const std::string &path, FaultKind kind);

} // namespace fault
} // namespace mcd

#endif // MCD_FAULT_FAULT_PLAN_HH
