#include "fault_plan.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace mcd {
namespace fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Throw: return "throw";
      case FaultKind::Flaky: return "flaky";
      case FaultKind::Stall: return "stall";
      case FaultKind::VfMisorder: return "vfmisorder";
      case FaultKind::TruncateCache: return "truncate";
      case FaultKind::CorruptCache: return "corrupt";
    }
    return "?";
}

InjectedFault::InjectedFault(const std::string &site, bool transient_)
    : std::runtime_error("injected fault at " + site +
                         (transient_ ? " (transient)" : "")),
      where(site), isTransient(transient_)
{}

namespace {

[[noreturn]] void
badSpec(const std::string &item, const char *why)
{
    fatal("MCD_FAULT_PLAN: bad item '" + item + "': " + why +
          " (grammar: leg:<bench>/<leg>=throw|flaky[:k]|stall|"
          "vfmisorder; cache:<bench>=truncate|corrupt; seed=N)");
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::string item;
    std::istringstream ss(spec);
    while (std::getline(ss, item, ';')) {
        if (item.empty())
            continue;
        if (item.rfind("seed=", 0) == 0) {
            char *end = nullptr;
            plan.rngSeed = std::strtoull(item.c_str() + 5, &end, 10);
            if (!end || *end)
                badSpec(item, "seed must be an unsigned integer");
            continue;
        }
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            badSpec(item, "missing '='");
        std::string target = item.substr(0, eq);
        std::string action = item.substr(eq + 1);

        FaultSpec fs;
        if (target.rfind("leg:", 0) == 0) {
            fs.site = target.substr(4);
            if (fs.site.find('/') == std::string::npos)
                badSpec(item, "leg site must be <bench>/<leg>");
            std::size_t colon = action.find(':');
            std::string verb = action.substr(0, colon);
            if (verb == "throw") {
                fs.kind = FaultKind::Throw;
            } else if (verb == "flaky") {
                fs.kind = FaultKind::Flaky;
                if (colon != std::string::npos) {
                    char *end = nullptr;
                    long k = std::strtol(
                        action.c_str() + colon + 1, &end, 10);
                    if (!end || *end || k < 1)
                        badSpec(item, "flaky count must be >= 1");
                    fs.count = static_cast<int>(k);
                }
            } else if (verb == "stall") {
                fs.kind = FaultKind::Stall;
            } else if (verb == "vfmisorder") {
                fs.kind = FaultKind::VfMisorder;
            } else {
                badSpec(item, "unknown leg action");
            }
            if (fs.kind != FaultKind::Flaky &&
                colon != std::string::npos) {
                badSpec(item, "only flaky takes a count");
            }
        } else if (target.rfind("cache:", 0) == 0) {
            fs.site = target.substr(6);
            if (fs.site.empty() ||
                fs.site.find('/') != std::string::npos) {
                badSpec(item, "cache site must be a benchmark name");
            }
            if (action == "truncate")
                fs.kind = FaultKind::TruncateCache;
            else if (action == "corrupt")
                fs.kind = FaultKind::CorruptCache;
            else
                badSpec(item, "unknown cache action");
        } else {
            badSpec(item, "target must start with leg: or cache:");
        }
        if (fs.site.empty())
            badSpec(item, "empty site");
        plan.armed.push_back(std::move(fs));
    }
    return plan;
}

std::string
FaultPlan::toSpec() const
{
    std::string out;
    auto append = [&](const std::string &item) {
        if (!out.empty())
            out += ";";
        out += item;
    };
    for (const FaultSpec &fs : armed) {
        switch (fs.kind) {
          case FaultKind::Throw:
            append("leg:" + fs.site + "=throw");
            break;
          case FaultKind::Flaky:
            append("leg:" + fs.site + "=flaky" +
                   (fs.count == 1 ? std::string()
                                  : ":" + std::to_string(fs.count)));
            break;
          case FaultKind::Stall:
            append("leg:" + fs.site + "=stall");
            break;
          case FaultKind::VfMisorder:
            append("leg:" + fs.site + "=vfmisorder");
            break;
          case FaultKind::TruncateCache:
            append("cache:" + fs.site + "=truncate");
            break;
          case FaultKind::CorruptCache:
            append("cache:" + fs.site + "=corrupt");
            break;
        }
    }
    if (rngSeed != 1)
        append("seed=" + std::to_string(rngSeed));
    return out;
}

const FaultSpec *
FaultPlan::findLeg(const std::string &site, FaultKind kind) const
{
    for (const FaultSpec &fs : armed) {
        if (fs.kind == kind && fs.site == site)
            return &fs;
    }
    return nullptr;
}

void
FaultPlan::onLegAttempt(const std::string &site, int attempt) const
{
    if (findLeg(site, FaultKind::Throw))
        throw InjectedFault(site, /*transient=*/false);
    if (const FaultSpec *fs = findLeg(site, FaultKind::Flaky)) {
        if (attempt <= fs->count)
            throw InjectedFault(site, /*transient=*/true);
    }
}

bool
FaultPlan::stallsLeg(const std::string &site) const
{
    return !site.empty() && findLeg(site, FaultKind::Stall) != nullptr;
}

bool
FaultPlan::misordersLeg(const std::string &site) const
{
    return !site.empty() &&
        findLeg(site, FaultKind::VfMisorder) != nullptr;
}

bool
FaultPlan::legFaultsFor(const std::string &bench) const
{
    std::string prefix = bench + "/";
    for (const FaultSpec &fs : armed) {
        bool legKind = fs.kind == FaultKind::Throw ||
            fs.kind == FaultKind::Flaky ||
            fs.kind == FaultKind::Stall ||
            fs.kind == FaultKind::VfMisorder;
        if (legKind && fs.site.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

std::optional<FaultKind>
FaultPlan::cacheFault(const std::string &bench) const
{
    for (const FaultSpec &fs : armed) {
        bool cacheKind = fs.kind == FaultKind::TruncateCache ||
            fs.kind == FaultKind::CorruptCache;
        if (cacheKind && fs.site == bench)
            return fs.kind;
    }
    return std::nullopt;
}

bool
damageFile(const std::string &path, FaultKind kind)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    in.close();

    if (kind == FaultKind::TruncateCache) {
        bytes.resize(bytes.size() / 2);
    } else {
        // Flip a run of payload bytes in the middle of the file; the
        // version header (first line) is left intact so the read path
        // exercises the checksum, not the version check.
        std::size_t start = bytes.size() / 2;
        for (std::size_t i = start;
             i < bytes.size() && i < start + 8; ++i) {
            bytes[i] = static_cast<char>(bytes[i] ^ 0x2a);
        }
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

} // namespace fault
} // namespace mcd
