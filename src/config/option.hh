/**
 * @file
 * One typed configuration option: the unit of the registry
 * (registry.hh) and of RunSpec resolution (runspec.hh).
 *
 * Every behavior-controlling knob in the tree is an OptionDef row:
 * its canonical name (the RunSpec JSON key), its environment alias
 * (the legacy MCD_* variable), its CLI flag, a type, a default, a doc
 * string, and the section it belongs to. The registry is the single
 * source of truth — the schema reference (docs/config-reference.md),
 * the --dump-config-schema output, flag parsing, env scanning, and
 * the effectiveConfig block in every results document are all derived
 * from it.
 */

#ifndef MCD_CONFIG_OPTION_HH
#define MCD_CONFIG_OPTION_HH

#include <string>

namespace mcd {
namespace config {

/** Value type of an option (drives parsing, validation, and how the
 *  value is rendered in RunSpec JSON). */
enum class Type { Bool, Int, U64, Double, String, Path };

/** Where a resolved value came from, in ascending precedence.
 *  (Emitted provenance additionally uses "code" for values the
 *  calling program set programmatically — see provenanceFor().) */
enum class Source { Default, File, Env, Flag };

struct OptionDef
{
    const char *name;       //!< canonical RunSpec key, e.g. "scale"
    const char *env;        //!< environment alias, e.g. "MCD_SCALE"
    const char *flag;       //!< CLI flag, e.g. "--scale"
    Type type;
    const char *defaultValue;   //!< default, as canonical text
    const char *doc;        //!< one-line schema description
    const char *section;    //!< "matrix", "host", "output", "soak", "meta"

    /**
     * True when the option shapes simulation *results* (as opposed to
     * host execution or output routing). Only these options appear in
     * the effectiveConfig block, which keeps results documents
     * byte-identical across MCD_JOBS values and output paths — the
     * repo-wide jobs-invariance contract.
     */
    bool affectsResults;

    /** Optional range check, run after the type-level parse. Fatal
     *  (via envutil parsers' conventions) on violation. */
    void (*check)(const OptionDef &opt, const std::string &what,
                  const std::string &value);
};

const char *typeName(Type t);
const char *sourceName(Source s);

} // namespace config
} // namespace mcd

#endif // MCD_CONFIG_OPTION_HH
