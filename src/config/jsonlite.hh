/**
 * @file
 * A minimal JSON reader for the configuration surfaces: objects of
 * strings, numbers, booleans, and nested objects — exactly the shape
 * of RunSpec documents (`mcd-runspec-v1`) and fuzz repro files
 * (`mcd-repro-v1` / `mcd-repro-v2`). Arrays and null are rejected:
 * no config document uses them, and rejecting keeps the parser small
 * enough to audit.
 *
 * Number tokens are preserved as their source text (not converted to
 * double), so values like a fuzz scenario's "0.050000" round-trip
 * exactly through read-then-rewrite paths — the same bit-identity
 * discipline as the spec-grammar parsers.
 */

#ifndef MCD_CONFIG_JSONLITE_HH
#define MCD_CONFIG_JSONLITE_HH

#include <string>
#include <utility>
#include <vector>

namespace mcd {
namespace config {
namespace jsonlite {

struct Value
{
    enum class Kind { String, Number, Bool, Object };

    Kind kind = Kind::String;
    std::string text;   //!< unescaped string / number token / "true"
    std::vector<std::pair<std::string, Value>> members; //!< Object

    /** Member lookup (Object only); nullptr when absent. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse @p text as one JSON value (object at any depth). Returns
 * false and fills @p err on malformed input — never throws, so
 * callers with a "shape errors are soft" contract (readRepro) can
 * degrade gracefully while config-file loaders turn err into fatal().
 * Duplicate keys within an object are an error.
 */
bool parse(const std::string &text, Value &out, std::string &err);

/** Escape @p s for emission inside a JSON string literal. */
std::string escape(const std::string &s);

} // namespace jsonlite
} // namespace config
} // namespace mcd

#endif // MCD_CONFIG_JSONLITE_HH
