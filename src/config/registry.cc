#include "registry.hh"

#include <algorithm>
#include <mutex>
#include <ostream>

#include "common/env.hh"
#include "common/log.hh"

namespace mcd {
namespace config {

const char *
typeName(Type t)
{
    switch (t) {
      case Type::Bool: return "bool";
      case Type::Int: return "int";
      case Type::U64: return "u64";
      case Type::Double: return "double";
      case Type::String: return "string";
      case Type::Path: return "path";
    }
    return "?";
}

const char *
sourceName(Source s)
{
    switch (s) {
      case Source::Default: return "default";
      case Source::File: return "file";
      case Source::Env: return "env";
      case Source::Flag: return "flag";
    }
    return "?";
}

namespace {

void
checkAtLeastOne(const OptionDef &, const std::string &what,
                const std::string &value)
{
    if (envutil::parseInt(what, value) < 1)
        fatal(what + ": must be >= 1 (got '" + value + "')");
}

void
checkNonNegative(const OptionDef &, const std::string &what,
                 const std::string &value)
{
    if (envutil::parseInt(what, value) < 0)
        fatal(what + ": must be >= 0 (got '" + value + "')");
}

/**
 * The whole configuration surface. Kept sorted by section then name;
 * the schema reference, the effectiveConfig block, and the rejection
 * messages all inherit this order, so it is part of the emitted-bytes
 * contract.
 */
const std::vector<OptionDef> table = {
    // --- matrix: shapes simulation results -------------------------
    {"benchmarks", "MCD_BENCHMARKS", "--benchmarks", Type::String, "",
     "Comma-separated benchmark subset to run (empty = all registered "
     "workloads); unknown names are fatal.", "matrix", true, nullptr},
    {"controllers", "MCD_CONTROLLERS", "--controllers", Type::String, "",
     "Comma-separated leg-name filter applied to the resolved leg set; "
     "unknown names are fatal, enumerating the available legs.",
     "matrix", true, nullptr},
    {"dilationHigh", "MCD_DILATION_HIGH", "--dilation-high",
     Type::Double, "0.05",
     "Dilation target of the dynamic-5% schedule-replay leg.",
     "matrix", true, nullptr},
    {"dilationLow", "MCD_DILATION_LOW", "--dilation-low", Type::Double,
     "0.01",
     "Dilation target of the dynamic-1% schedule-replay leg.",
     "matrix", true, nullptr},
    {"dvfsTimeScale", "MCD_DVFS_TIME_SCALE", "--dvfs-time-scale",
     Type::Double, "0.2",
     "DVFS transition-time shrink factor (DESIGN.md section 4, "
     "substitution 2).", "matrix", true, nullptr},
    {"faultPlan", "MCD_FAULT_PLAN", "--fault-plan", Type::String, "",
     "Fault-injection plan (FaultPlan grammar, e.g. "
     "'leg:adpcm/dyn1=throw'); empty = no injection.", "matrix", true,
     nullptr},
    {"invariants", "MCD_INVARIANTS", "--invariants", Type::String, "",
     "Telemetry invariant spec ('default' or a rule list); empty = "
     "engine off.", "matrix", true, nullptr},
    {"legAttempts", "MCD_LEG_ATTEMPTS", "--leg-attempts", Type::Int,
     "2",
     "Attempts the per-leg guard makes before recording a failure "
     "(only transient faults are retried).", "matrix", true,
     checkAtLeastOne},
    {"legs", "MCD_LEGS", "--legs", Type::String, "",
     "Explicit dynamic-control leg set (legsToSpec grammar); empty = "
     "the paper defaults or, under tournament, every registered "
     "controller.", "matrix", true, nullptr},
    {"model", "MCD_MODEL", "--model", Type::String, "",
     "DVFS scaling model (XScale or Transmeta); empty = the binary's "
     "built-in choice.", "matrix", true, nullptr},
    {"sampling", "MCD_SAMPLING", "--sampling", Type::String, "",
     "SMARTS-style sampled simulation spec "
     "(detailed=N,ff=N,warmup=N[,tol=F]); empty = full detail.",
     "matrix", true, nullptr},
    {"scale", "MCD_SCALE", "--scale", Type::Int, "1",
     "Workload scale factor (>= 1).", "matrix", true, checkAtLeastOne},
    {"seed", "MCD_SEED", "--seed", Type::U64, "1",
     "Root seed for per-run random streams.", "matrix", true, nullptr},
    {"tournament", "MCD_TOURNAMENT", "--tournament", Type::Bool, "0",
     "Run the registered-controller tournament leg set instead of the "
     "paper's default matrix.", "matrix", true, nullptr},
    {"watchdogEdges", "MCD_WATCHDOG_EDGES", "--watchdog-edges",
     Type::U64, "40000000",
     "Watchdog no-progress budget in clock edges (0 = off).", "matrix",
     true, nullptr},
    {"watchdogTicks", "MCD_WATCHDOG_TICKS", "--watchdog-ticks",
     Type::U64, "0",
     "Watchdog simulated-time budget in ticks (0 = unlimited).",
     "matrix", true, nullptr},

    // --- host: execution strategy, never result-shaping ------------
    {"cacheDir", "MCD_CACHE_DIR", "--cache-dir", Type::Path, "",
     "Experiment result-cache directory; explicitly empty disables "
     "caching (bench binaries default to .mcd-bench-cache when the "
     "option is left unset).", "host", false, nullptr},
    {"invariantsFatal", "MCD_INVARIANTS_FATAL", "--invariants-fatal",
     Type::Bool, "0",
     "Exit with code 5 when an otherwise-clean matrix recorded "
     "invariant violations (the violations themselves are always in "
     "the results JSON).", "host", false, nullptr},
    {"jobs", "MCD_JOBS", "--jobs", Type::Int, "0",
     "Worker threads for the matrix (0 = hardware concurrency; "
     "results are bit-identical for every value).", "host", false,
     checkNonNegative},

    // --- output: document routing ----------------------------------
    {"leaderboardJson", "MCD_LEADERBOARD_JSON", "--leaderboard-json",
     Type::Path, "",
     "Write the ranked controller leaderboard JSON to this path.",
     "output", false, nullptr},
    {"profOut", "MCD_PROF_OUT", "--prof-out", Type::Path, "",
     "Arm the host profiler and write its profile JSON to this path.",
     "output", false, nullptr},
    {"resultsJson", "MCD_RESULTS_JSON", "--results-json", Type::Path,
     "",
     "Write the matrix results JSON (with its effectiveConfig block) "
     "to this path.", "output", false, nullptr},
    {"statsOut", "MCD_STATS_OUT", "--stats-out", Type::Path, "",
     "Write merged telemetry stats JSON to this path (implies full "
     "telemetry collection).", "output", false, nullptr},
    {"traceOut", "MCD_TRACE_OUT", "--trace-out", Type::Path, "",
     "Write a merged Chrome trace to this path (implies full "
     "telemetry collection).", "output", false, nullptr},

    // --- soak: the fuzz soak driver --------------------------------
    {"soakBudget", "MCD_SOAK_BUDGET", "--soak-budget", Type::Int, "25",
     "Scenario tuples to run in one soak invocation.", "soak", false,
     checkNonNegative},
    {"soakJobs", "MCD_SOAK_JOBS", "--soak-jobs", Type::Int, "1",
     "Divergence-check job count for ok soak tuples.", "soak", false,
     checkAtLeastOne},
    {"soakOut", "MCD_SOAK_OUT", "--soak-out", Type::Path, "",
     "Soak output directory (journal + minimized repro corpus).",
     "soak", false, nullptr},
    {"soakPlant", "MCD_SOAK_PLANT", "--soak-plant", Type::String, "",
     "Planted-fault plan for the soak canary channel (FaultPlan "
     "grammar, '@' = benchmark).", "soak", false, nullptr},
    {"soakSeed", "MCD_SOAK_SEED", "--soak-seed", Type::U64, "1",
     "Root seed of the soak tuple stream.", "soak", false, nullptr},

    // --- meta: the config layer itself -----------------------------
    {"config", "MCD_CONFIG", "--config", Type::Path, "",
     "Load a mcd-runspec-v1 JSON document as the config-file layer "
     "(defaults < file < env < flags).", "meta", false, nullptr},
    {"envAllow", "MCD_ENV_ALLOW", "--env-allow", Type::String, "",
     "Comma-separated allowlist of unregistered MCD_* environment "
     "variables to accept silently (trailing '*' matches a prefix); "
     "the escape hatch for CI wrappers.", "meta", false, nullptr},
    {"strictEnv", "MCD_STRICT_ENV", "--strict-env", Type::Bool, "0",
     "Make unregistered MCD_* environment variables fatal instead of "
     "warn-once.", "meta", false, nullptr},
};

std::mutex overrideMutex;
std::vector<std::pair<std::string, std::string>> overrides;

} // namespace

const std::vector<OptionDef> &
options()
{
    return table;
}

const OptionDef *
find(std::string_view name)
{
    for (const OptionDef &o : table) {
        if (name == o.name)
            return &o;
    }
    return nullptr;
}

const OptionDef *
findByEnv(std::string_view env)
{
    for (const OptionDef &o : table) {
        if (env == o.env)
            return &o;
    }
    return nullptr;
}

const OptionDef *
findByFlag(std::string_view flag)
{
    for (const OptionDef &o : table) {
        if (flag == o.flag)
            return &o;
    }
    return nullptr;
}

namespace {

std::string
joined(const char *OptionDef::*field)
{
    std::string out;
    for (const OptionDef &o : table) {
        if (!out.empty())
            out += ", ";
        out += o.*field;
    }
    return out;
}

} // namespace

std::string
validNames()
{
    return joined(&OptionDef::name);
}

std::string
validEnvNames()
{
    return joined(&OptionDef::env);
}

void
writeSchemaMarkdown(std::ostream &os)
{
    os << "# Configuration reference\n"
       << "\n"
       << "Generated by `--dump-config-schema` from the option "
          "registry\n"
       << "(`src/config/registry.cc`). Do not edit by hand — CI "
          "regenerates\n"
       << "this file and fails on drift.\n"
       << "\n"
       << "Resolution layers, lowest to highest precedence: built-in "
          "default\n"
       << "< config file (`--config` / `MCD_CONFIG`, a "
          "`mcd-runspec-v1` JSON\n"
       << "document) < environment variable < CLI flag. Booleans are "
          "value-\n"
       << "checked (`0/false/no/off` vs `1/true/yes/on`; DESIGN.md "
          "§15), and\n"
       << "unregistered `MCD_*` environment variables warn once "
          "(fatal under\n"
       << "`strictEnv`; silenced per-name by `envAllow`).\n";
    const char *section = "";
    const char *blurb[] = {
        "matrix", "Result-shaping options; these (and only these) "
        "appear in every run's `effectiveConfig` block.",
        "host", "Host execution strategy; never changes results.",
        "output", "Document routing; never changes results.",
        "soak", "The `mcd_soak` fuzz driver.",
        "meta", "The configuration layer itself.",
    };
    for (const OptionDef &o : table) {
        if (std::string_view(section) != o.section) {
            section = o.section;
            os << "\n## " << section << "\n\n";
            for (std::size_t i = 0; i + 1 < std::size(blurb); i += 2) {
                if (std::string_view(blurb[i]) == section)
                    os << blurb[i + 1] << "\n\n";
            }
            os << "| option | env | flag | type | default | "
                  "description |\n"
               << "|---|---|---|---|---|---|\n";
        }
        os << "| `" << o.name << "` | `" << o.env << "` | `" << o.flag
           << "` | " << typeName(o.type) << " | "
           << (*o.defaultValue ? ("`" + std::string(o.defaultValue) +
                                  "`")
                               : std::string("(empty)"))
           << " | " << o.doc << " |\n";
    }
}

void
setFlagOverride(const std::string &name, std::string value)
{
    if (!find(name))
        fatal("config: unknown option '" + name + "' (valid: " +
              validNames() + ")");
    std::lock_guard<std::mutex> lk(overrideMutex);
    for (auto &[n, v] : overrides) {
        if (n == name) {
            v = std::move(value);
            return;
        }
    }
    overrides.emplace_back(name, std::move(value));
}

void
clearFlagOverrides()
{
    std::lock_guard<std::mutex> lk(overrideMutex);
    overrides.clear();
}

std::vector<std::pair<std::string, std::string>>
flagOverrides()
{
    std::lock_guard<std::mutex> lk(overrideMutex);
    return overrides;
}

} // namespace config
} // namespace mcd
