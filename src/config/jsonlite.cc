#include "jsonlite.hh"

#include <cctype>
#include <cstdio>

namespace mcd {
namespace config {
namespace jsonlite {

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        err = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    expect(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              default:
                // \uXXXX would need UTF-16 handling no config
                // document requires; reject rather than mis-decode.
                return fail(std::string("unsupported escape '\\") + e +
                            "'");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;      // closing quote
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{')
            return parseObject(out);
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.text);
        }
        if (c == 't' || c == 'f') {
            const char *word = c == 't' ? "true" : "false";
            if (text.compare(pos, std::string(word).size(), word) != 0)
                return fail("malformed literal");
            out.kind = Value::Kind::Bool;
            out.text = word;
            pos += std::string(word).size();
            return true;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = pos;
            while (pos < text.size() &&
                   (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                    text[pos] == '-' || text[pos] == '+' ||
                    text[pos] == '.' || text[pos] == 'e' ||
                    text[pos] == 'E')) {
                ++pos;
            }
            out.kind = Value::Kind::Number;
            out.text = text.substr(start, pos - start);
            return true;
        }
        if (c == '[')
            return fail("arrays are not part of any config document");
        if (c == 'n')
            return fail("null is not part of any config document");
        return fail("unexpected character");
    }

    bool
    parseObject(Value &out)
    {
        if (!expect('{'))
            return false;
        out.kind = Value::Kind::Object;
        out.members.clear();
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            if (out.find(key))
                return fail("duplicate key '" + key + "'");
            if (!expect(':'))
                return false;
            Value v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        err = p.err;
        return false;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        err = "trailing content at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace jsonlite
} // namespace config
} // namespace mcd
