#include "runspec.hh"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>

#include "common/env.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "config/jsonlite.hh"

extern char **environ;

namespace mcd {
namespace config {

const char *const runSpecVersion = "mcd-runspec-v1";

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream ss(csv);
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
canonicalDouble(double v)
{
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        panic("canonicalDouble: to_chars failed");
    return std::string(buf, ptr);
}

std::string
canonicalValue(const OptionDef &opt, const std::string &what,
               const std::string &raw)
{
    switch (opt.type) {
      case Type::Bool:
        return envutil::parseBool(what, raw) ? "true" : "false";
      case Type::Int:
        return std::to_string(envutil::parseInt(what, raw));
      case Type::U64:
        return std::to_string(envutil::parseU64(what, raw));
      case Type::Double:
        return canonicalDouble(envutil::parseDouble(what, raw));
      case Type::String:
      case Type::Path:
        return raw;
    }
    return raw;
}

namespace {

/** What to call an entry in parse/validation errors, per layer. */
std::string
describe(const OptionDef &opt, Source src)
{
    switch (src) {
      case Source::Env: return opt.env;
      case Source::Flag: return opt.flag;
      case Source::File:
        return "config file option '" + std::string(opt.name) + "'";
      case Source::Default:
        return std::string("option '") + opt.name + "' default";
    }
    return opt.name;
}

/** Empty env values mean "unset" for numeric options (CI wrappers
 *  clear variables with VAR=), but are an explicit value for strings,
 *  paths (MCD_CACHE_DIR= disables caching), and booleans (""/0 are
 *  both false under the value-checked rule). */
bool
emptyMeansUnset(Type t)
{
    return t == Type::Int || t == Type::U64 || t == Type::Double;
}

void
loadConfigFile(RunSpec &spec, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();

    jsonlite::Value doc;
    std::string err;
    if (!jsonlite::parse(buf.str(), doc, err) ||
        doc.kind != jsonlite::Value::Kind::Object) {
        fatal("config: " + path + ": malformed JSON (" +
              (err.empty() ? "not an object" : err) + ")");
    }
    const jsonlite::Value *version = doc.find("version");
    if (!version || version->text != runSpecVersion)
        fatal("config: " + path + ": expected \"version\": \"" +
              runSpecVersion + "\"");
    for (const auto &[key, value] : doc.members) {
        if (key == "version" || key == "provenance")
            continue;   // provenance is informational on load
        if (key != "options")
            fatal("config: " + path + ": unknown top-level key '" +
                  key + "' (expected version, options, provenance)");
        if (value.kind != jsonlite::Value::Kind::Object)
            fatal("config: " + path + ": \"options\" must be an "
                  "object");
        for (const auto &[name, v] : value.members) {
            const OptionDef *opt = find(name);
            if (!opt)
                fatal("config: " + path + ": unknown option '" + name +
                      "' (valid: " + validNames() + ")");
            if (opt->name == std::string_view("config"))
                fatal("config: " + path + ": a config file cannot "
                      "name another config file");
            if (v.kind == jsonlite::Value::Kind::Object)
                fatal("config: " + path + ": option '" + name +
                      "' must be a scalar");
            spec.entries[opt->name] = {v.text, Source::File};
        }
    }
}

/** Names already warned about (warn-once across resolve() calls). */
std::set<std::string> &
warnedEnvNames()
{
    static std::set<std::string> names;
    return names;
}

std::mutex warnMutex;

bool
allowlisted(const std::string &name,
            const std::vector<std::string> &allow)
{
    for (const std::string &pat : allow) {
        if (!pat.empty() && pat.back() == '*') {
            if (name.compare(0, pat.size() - 1, pat, 0,
                             pat.size() - 1) == 0)
                return true;
        } else if (name == pat) {
            return true;
        }
    }
    return false;
}

void
scanEnviron(RunSpec &spec)
{
    std::vector<std::string> allow = splitList(spec.str("envAllow"));
    bool strict = spec.boolean("strictEnv");
    std::vector<std::string> unknown;
    for (char **e = environ; e && *e; ++e) {
        std::string_view entry(*e);
        if (entry.substr(0, 4) != "MCD_")
            continue;
        std::size_t eq = entry.find('=');
        std::string name(entry.substr(0, eq));
        if (findByEnv(name) || allowlisted(name, allow))
            continue;
        unknown.push_back(std::move(name));
    }
    if (unknown.empty())
        return;
    spec.unknownEnv = unknown;
    if (strict) {
        std::string msg = "config: unregistered MCD_* environment "
            "variable(s):";
        for (const std::string &n : unknown)
            msg += " " + n;
        msg += " (valid: " + validEnvNames() +
            "; allowlist with MCD_ENV_ALLOW)";
        fatal(msg);
    }
    std::lock_guard<std::mutex> lk(warnMutex);
    for (const std::string &n : unknown) {
        if (!warnedEnvNames().insert(n).second)
            continue;
        warn("config: environment variable " + n + " matches no "
             "registered option and is ignored (a typo? valid names: " +
             validEnvNames() + "; silence with MCD_ENV_ALLOW=" + n +
             " or make fatal with MCD_STRICT_ENV=1)");
    }
}

} // namespace

RunSpec
RunSpec::resolve()
{
    RunSpec spec;
    for (const OptionDef &o : options())
        spec.entries[o.name] = {o.defaultValue, Source::Default};

    // The config-file path itself resolves flag-over-env so a --config
    // flag beats an MCD_CONFIG variable, like every other option.
    std::string path;
    if (const char *v = std::getenv("MCD_CONFIG"))
        path = v;
    std::vector<std::pair<std::string, std::string>> flags =
        flagOverrides();
    for (const auto &[name, value] : flags)
        if (name == "config")
            path = value;
    if (!path.empty())
        loadConfigFile(spec, path);

    for (const OptionDef &o : options()) {
        const char *v = std::getenv(o.env);
        if (!v)
            continue;
        if (!*v && emptyMeansUnset(o.type))
            continue;
        spec.entries[o.name] = {v, Source::Env};
    }

    for (const auto &[name, value] : flags)
        spec.entries[name] = {value, Source::Flag};

    // Validate every non-default entry: collect all defects into one
    // fatal (fuzz-triage style), not just the first.
    std::vector<std::string> errs;
    for (const OptionDef &o : options()) {
        const Entry &e = spec.entries[o.name];
        if (e.source == Source::Default)
            continue;
        std::string what = describe(o, e.source);
        try {
            canonicalValue(o, what, e.value);
            if (o.check)
                o.check(o, what, e.value);
        } catch (const FatalError &ex) {
            errs.emplace_back(ex.what());
        }
    }
    if (errs.size() == 1)
        fatal(errs.front());
    if (!errs.empty()) {
        std::string msg = "config: " + std::to_string(errs.size()) +
            " invalid settings:";
        for (const std::string &e : errs)
            msg += "\n  - " + e;
        fatal(msg);
    }

    scanEnviron(spec);
    return spec;
}

const RunSpec::Entry &
RunSpec::entry(std::string_view name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        fatal("config: unknown option '" + std::string(name) +
              "' (valid: " + validNames() + ")");
    return it->second;
}

Source
RunSpec::source(std::string_view name) const
{
    return entry(name).source;
}

bool
RunSpec::isDefault(std::string_view name) const
{
    return entry(name).source == Source::Default;
}

std::string
RunSpec::str(std::string_view name) const
{
    return entry(name).value;
}

bool
RunSpec::boolean(std::string_view name) const
{
    return envutil::parseBool(std::string(name), entry(name).value);
}

long long
RunSpec::integer(std::string_view name) const
{
    return envutil::parseInt(std::string(name), entry(name).value);
}

std::uint64_t
RunSpec::u64(std::string_view name) const
{
    return envutil::parseU64(std::string(name), entry(name).value);
}

double
RunSpec::real(std::string_view name) const
{
    return envutil::parseDouble(std::string(name), entry(name).value);
}

int
RunSpec::jobs() const
{
    long long n = integer("jobs");
    if (n > 0)
        return static_cast<int>(n);
    return static_cast<int>(ThreadPool::hardwareJobs());
}

std::string
provenanceFor(const RunSpec &spec, const OptionDef &opt,
              const std::string &actual)
{
    const RunSpec::Entry &e = spec.entry(opt.name);
    std::string what = std::string("option '") + opt.name + "'";
    if (canonicalValue(opt, what, e.value) ==
        canonicalValue(opt, what, actual)) {
        return sourceName(e.source);
    }
    return "code";
}

namespace {

/** The typed JSON token for one option value (already canonical). */
std::string
jsonValue(const OptionDef &opt, const std::string &canonical)
{
    switch (opt.type) {
      case Type::Bool:
      case Type::Int:
      case Type::U64:
      case Type::Double:
        return canonical;
      case Type::String:
      case Type::Path:
        return "\"" + jsonlite::escape(canonical) + "\"";
    }
    return canonical;
}

} // namespace

void
writeEffectiveConfigJson(
    std::ostream &os, const std::string &indent, const RunSpec &spec,
    const std::vector<std::pair<std::string, std::string>> &actual)
{
    os << "{\n"
       << indent << "  \"version\": \"" << runSpecVersion << "\",\n"
       << indent << "  \"options\": {";
    bool first = true;
    for (const auto &[name, value] : actual) {
        const OptionDef *opt = find(name);
        if (!opt)
            panic("writeEffectiveConfigJson: unknown option " + name);
        std::string what = std::string("option '") + name + "'";
        os << (first ? "" : ",") << "\n"
           << indent << "    \"" << name << "\": "
           << jsonValue(*opt, canonicalValue(*opt, what, value));
        first = false;
    }
    os << "\n" << indent << "  },\n"
       << indent << "  \"provenance\": {";
    first = true;
    for (const auto &[name, value] : actual) {
        const OptionDef *opt = find(name);
        os << (first ? "" : ",") << "\n"
           << indent << "    \"" << name << "\": \""
           << provenanceFor(spec, *opt, value) << "\"";
        first = false;
    }
    os << "\n" << indent << "  }\n" << indent << "}";
}

} // namespace config
} // namespace mcd
