/**
 * @file
 * RunSpec: the resolved, typed configuration of one run, with
 * per-option provenance.
 *
 * Resolution layers every option through defaults < config file
 * (`--config` / `MCD_CONFIG`, a `mcd-runspec-v1` JSON document) < env
 * vars < CLI flags, records where each value came from, rejects
 * unknown config-file keys outright, and scans the environment for
 * unregistered MCD_* variables (warn-once typo canary; fatal under
 * strictEnv; silenced per-name by the envAllow list).
 *
 * resolve() re-reads the environment and flag store every call — a
 * RunSpec is a snapshot, not a singleton — so tests that setenv() /
 * unsetenv() around calls observe exactly what they set.
 */

#ifndef MCD_CONFIG_RUNSPEC_HH
#define MCD_CONFIG_RUNSPEC_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "config/registry.hh"

namespace mcd {
namespace config {

/** The RunSpec JSON document version ("mcd-runspec-v1"). */
extern const char *const runSpecVersion;

struct RunSpec
{
    struct Entry
    {
        std::string value;      //!< raw text as given by its layer
        Source source = Source::Default;
    };

    /** One entry per registered option, keyed by canonical name. */
    std::map<std::string, Entry, std::less<>> entries;

    /** Unregistered MCD_* env names seen at resolution (after the
     *  allowlist), exposed so the typo canary is testable. */
    std::vector<std::string> unknownEnv;

    /** Resolve all layers; fatal() on invalid values, unknown
     *  config-file keys, or (under strictEnv) unknown MCD_* vars. */
    static RunSpec resolve();

    const Entry &entry(std::string_view name) const;
    Source source(std::string_view name) const;
    bool isDefault(std::string_view name) const;

    /** Typed accessors (fatal on a type mismatch — resolution already
     *  validated, so these only throw for programmer errors). */
    std::string str(std::string_view name) const;
    bool boolean(std::string_view name) const;
    long long integer(std::string_view name) const;
    std::uint64_t u64(std::string_view name) const;
    double real(std::string_view name) const;

    /** The resolved worker count: the jobs option, with 0 mapped to
     *  hardware concurrency. */
    int jobs() const;
};

/** Split a comma-separated list, dropping empty items. */
std::vector<std::string> splitList(const std::string &csv);

/** Shortest double text that reparses bit-identically. */
std::string canonicalDouble(double v);

/** @p raw parsed and reformatted canonically for @p opt's type
 *  (booleans -> "true"/"false", numbers -> shortest text; strings
 *  unchanged). fatal() on a malformed value, naming @p what. */
std::string canonicalValue(const OptionDef &opt, const std::string &what,
                           const std::string &raw);

/**
 * Provenance of an option's *actual* value in a finished run:
 * sourceName(spec source) when the value the run used canonically
 * equals the resolved spec's, else "code" — the calling program set
 * it programmatically (tests, fig8's per-model loop).
 */
std::string provenanceFor(const RunSpec &spec, const OptionDef &opt,
                          const std::string &actual);

/**
 * Emit an effectiveConfig block: version, a typed "options" object,
 * and a parallel "provenance" object, over the given (name, actual
 * canonical value) rows — callers pass every affectsResults option in
 * registry order. @p indent prefixes every line after the first; the
 * emitted fragment starts at '{' and ends at '}' with no trailing
 * newline, so it drops into any surrounding document.
 */
void writeEffectiveConfigJson(
    std::ostream &os, const std::string &indent, const RunSpec &spec,
    const std::vector<std::pair<std::string, std::string>> &actual);

} // namespace config
} // namespace mcd

#endif // MCD_CONFIG_RUNSPEC_HH
