/**
 * @file
 * The typed option registry: every configuration knob in the tree as
 * one table, plus the process-wide CLI flag-override store that forms
 * the top layer of RunSpec resolution.
 */

#ifndef MCD_CONFIG_REGISTRY_HH
#define MCD_CONFIG_REGISTRY_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "config/option.hh"

namespace mcd {
namespace config {

/** Every registered option, sorted by (section, name). */
const std::vector<OptionDef> &options();

/** Lookup by canonical name / env alias / CLI flag; nullptr when
 *  unknown. */
const OptionDef *find(std::string_view name);
const OptionDef *findByEnv(std::string_view env);
const OptionDef *findByFlag(std::string_view flag);

/** Comma-joined valid names / env aliases, for rejection messages. */
std::string validNames();
std::string validEnvNames();

/**
 * The generated schema reference (--dump-config-schema): one markdown
 * table per section with name, env, flag, type, default, and doc
 * columns. docs/config-reference.md is this output, committed; CI
 * regenerates it and fails on drift.
 */
void writeSchemaMarkdown(std::ostream &os);

/**
 * CLI flag overrides: the highest-precedence resolution layer.
 * Binaries record parsed flags here (by option *name*), then every
 * subsequent RunSpec::resolve() sees them. fatal() on unknown names.
 */
void setFlagOverride(const std::string &name, std::string value);

/** Drop all flag overrides (tests; also sensible between argv
 *  re-parses). */
void clearFlagOverrides();

/** The current overrides as (name, value) pairs, in set order. */
std::vector<std::pair<std::string, std::string>> flagOverrides();

} // namespace config
} // namespace mcd

#endif // MCD_CONFIG_REGISTRY_HH
