/**
 * @file
 * The DVFS operating-point table: 32 frequency points spanning a
 * linear range from 1 GHz down to 250 MHz with a corresponding linear
 * voltage range from 1.2 V down to 0.65 V (paper Section 3).
 *
 * The paper simulated the 1.2-0.65 V range as 2.0-1.0833 V because
 * Wattch fixes Vdd = 2.0 V; we parameterize voltage directly, which
 * leaves every relative energy result identical (energy scales with
 * the *ratio* V/Vmax squared).
 */

#ifndef MCD_CLOCK_OPERATING_POINTS_HH
#define MCD_CLOCK_OPERATING_POINTS_HH

#include <vector>

#include "common/types.hh"

namespace mcd {

/** One (frequency, voltage) pair. */
struct OperatingPoint
{
    Hertz frequency = 0.0;
    Volt voltage = 0.0;
};

/**
 * The table of discrete operating points plus the continuous linear
 * frequency<->voltage map they are sampled from.
 *
 * Index 0 is the slowest point; index numPoints()-1 the fastest.
 */
class DvfsTable
{
  public:
    /** Construct the paper's default 32-point table. */
    DvfsTable();

    /** Construct a custom table (used by tests and ablations). */
    DvfsTable(Hertz f_min, Hertz f_max, Volt v_min, Volt v_max,
              int points);

    int numPoints() const { return static_cast<int>(table.size()); }
    const OperatingPoint &point(int idx) const { return table[idx]; }
    const OperatingPoint &slowest() const { return table.front(); }
    const OperatingPoint &fastest() const { return table.back(); }

    Hertz minFrequency() const { return fMin; }
    Hertz maxFrequency() const { return fMax; }
    Volt minVoltage() const { return vMin; }
    Volt maxVoltage() const { return vMax; }

    /** Voltage on the linear map for an arbitrary frequency. */
    Volt voltageFor(Hertz f) const;

    /** Frequency on the linear map for an arbitrary voltage. */
    Hertz frequencyFor(Volt v) const;

    /**
     * Index of the slowest table point with frequency >= @p f
     * (clamped to the fastest point if @p f exceeds the table).
     */
    int indexAtLeast(Hertz f) const;

    /** Index of the table point nearest in frequency to @p f. */
    int indexNearest(Hertz f) const;

  private:
    Hertz fMin, fMax;
    Volt vMin, vMax;
    std::vector<OperatingPoint> table;
};

} // namespace mcd

#endif // MCD_CLOCK_OPERATING_POINTS_HH
