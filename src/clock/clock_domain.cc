#include "clock_domain.hh"

#include "common/log.hh"

namespace mcd {

ClockDomain::ClockDomain(Domain id, Hertz f, std::uint64_t seed,
                         double jitter_sigma_ps, bool randomize_phase)
    : domainId(id), freq(f), jitterSigma(jitter_sigma_ps), rng(seed)
{
    if (f <= 0.0)
        fatal("clock frequency must be positive");
    Tick phase = 0;
    if (randomize_phase)
        phase = static_cast<Tick>(rng.uniform() * period());
    curEdge = phase;
    nextEdge = scheduleAfter(curEdge);
}

Tick
ClockDomain::scheduleAfter(Tick from)
{
    double p = period();
    double j = jitterSigma > 0.0
        ? rng.normalClamped(0.0, jitterSigma, 3.0)
        : 0.0;
    // Jitter must never push an edge to or before its predecessor.
    double dt = p + j;
    if (dt < p * 0.25)
        dt = p * 0.25;
    return from + static_cast<Tick>(dt);
}

Tick
ClockDomain::advance()
{
    curEdge = nextEdge;
    ++edgeCount;
    nextEdge = scheduleAfter(curEdge);
    return curEdge;
}

void
ClockDomain::setFrequency(Hertz f)
{
    if (f <= 0.0)
        fatal("clock frequency must be positive");
    freq = f;
}

} // namespace mcd
