#include "operating_points.hh"

#include <cmath>

#include "common/log.hh"

namespace mcd {

DvfsTable::DvfsTable()
    : DvfsTable(250e6, 1e9, 0.65, 1.2, 32)
{}

DvfsTable::DvfsTable(Hertz f_min, Hertz f_max, Volt v_min, Volt v_max,
                     int points)
    : fMin(f_min), fMax(f_max), vMin(v_min), vMax(v_max)
{
    if (points < 2)
        fatal("DvfsTable requires at least two points");
    if (f_min >= f_max || v_min >= v_max)
        fatal("DvfsTable ranges must be increasing");
    table.reserve(points);
    for (int i = 0; i < points; ++i) {
        double t = static_cast<double>(i) / (points - 1);
        table.push_back({fMin + t * (fMax - fMin),
                         vMin + t * (vMax - vMin)});
    }
}

Volt
DvfsTable::voltageFor(Hertz f) const
{
    if (f <= fMin)
        return vMin;
    if (f >= fMax)
        return vMax;
    double t = (f - fMin) / (fMax - fMin);
    return vMin + t * (vMax - vMin);
}

Hertz
DvfsTable::frequencyFor(Volt v) const
{
    if (v <= vMin)
        return fMin;
    if (v >= vMax)
        return fMax;
    double t = (v - vMin) / (vMax - vMin);
    return fMin + t * (fMax - fMin);
}

int
DvfsTable::indexAtLeast(Hertz f) const
{
    for (int i = 0; i < numPoints(); ++i) {
        if (table[i].frequency >= f - 1.0)   // 1 Hz tolerance
            return i;
    }
    return numPoints() - 1;
}

int
DvfsTable::indexNearest(Hertz f) const
{
    int best = 0;
    double bestDist = std::fabs(table[0].frequency - f);
    for (int i = 1; i < numPoints(); ++i) {
        double d = std::fabs(table[i].frequency - f);
        if (d < bestDist) {
            bestDist = d;
            best = i;
        }
    }
    return best;
}

} // namespace mcd
