#include "dvfs.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/log.hh"
#include "obs/telemetry.hh"

namespace mcd {

const char *
dvfsKindName(DvfsKind kind)
{
    switch (kind) {
      case DvfsKind::None: return "none";
      case DvfsKind::Transmeta: return "Transmeta";
      case DvfsKind::XScale: return "XScale";
    }
    return "?";
}

std::optional<DvfsKind>
dvfsKindFromName(std::string_view name)
{
    auto equals = [](std::string_view a, std::string_view b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(a[i])) !=
                std::tolower(static_cast<unsigned char>(b[i]))) {
                return false;
            }
        }
        return true;
    };
    for (DvfsKind k : {DvfsKind::None, DvfsKind::Transmeta,
                       DvfsKind::XScale}) {
        if (equals(name, dvfsKindName(k)))
            return k;
    }
    return std::nullopt;
}

std::string
dvfsKindNames()
{
    std::string out;
    for (DvfsKind k : {DvfsKind::None, DvfsKind::Transmeta,
                       DvfsKind::XScale}) {
        if (!out.empty())
            out += ", ";
        out += dvfsKindName(k);
    }
    return out;
}

DvfsParams
DvfsParams::transmeta(double time_scale)
{
    DvfsParams p;
    p.kind = DvfsKind::Transmeta;
    p.stepsFullRange = 32;
    p.stepTime = static_cast<Tick>(fromMicroseconds(20.0) * time_scale);
    p.freqTracksVoltage = false;
    p.pllRelock = true;
    p.relockMin = static_cast<Tick>(fromMicroseconds(10.0) * time_scale);
    p.relockMax = static_cast<Tick>(fromMicroseconds(20.0) * time_scale);
    p.relockMean = static_cast<Tick>(fromMicroseconds(15.0) * time_scale);
    // ~99.7% of samples inside the 10-20 us range.
    p.relockSigma = fromMicroseconds(5.0 / 3.0) * time_scale;
    return p;
}

DvfsParams
DvfsParams::xscale(double time_scale)
{
    DvfsParams p;
    p.kind = DvfsKind::XScale;
    p.stepsFullRange = 320;
    p.stepTime = static_cast<Tick>(fromMicroseconds(0.1718) * time_scale);
    p.freqTracksVoltage = true;
    p.pllRelock = false;
    return p;
}

DvfsParams
DvfsParams::none()
{
    DvfsParams p;
    p.kind = DvfsKind::None;
    // Fine-grained levels so instant voltage changes land on (nearly)
    // the exact table voltage; stepTime is irrelevant for this kind.
    p.stepsFullRange = 320;
    p.stepTime = 0;
    return p;
}

DvfsParams
DvfsParams::forKind(DvfsKind kind, double time_scale)
{
    switch (kind) {
      case DvfsKind::Transmeta: return transmeta(time_scale);
      case DvfsKind::XScale: return xscale(time_scale);
      case DvfsKind::None: return none();
    }
    return none();
}

DomainDvfs::DomainDvfs(const DvfsParams &p, const DvfsTable &t,
                       ClockDomain &domain, std::uint64_t seed)
    : params(p), table(t), dom(domain), rng(seed),
      targetFreq(domain.frequency())
{
    level = levelForVoltage(table.voltageFor(dom.frequency()));
    targetLevel = level;
    dom.setVoltage(voltageForLevel(level));
}

int
DomainDvfs::levelForVoltage(Volt v) const
{
    double span = table.maxVoltage() - table.minVoltage();
    double frac = (v - table.minVoltage()) / span;
    int lvl = static_cast<int>(
        std::ceil(frac * params.stepsFullRange - 1e-9));
    return std::clamp(lvl, 0, params.stepsFullRange);
}

Volt
DomainDvfs::voltageForLevel(int lvl) const
{
    double span = table.maxVoltage() - table.minVoltage();
    return table.minVoltage() +
        span * lvl / static_cast<double>(params.stepsFullRange);
}

Tick
DomainDvfs::sampleRelock()
{
    double t = rng.normal(static_cast<double>(params.relockMean),
                          params.relockSigma);
    double lo = static_cast<double>(params.relockMin);
    double hi = static_cast<double>(params.relockMax);
    return static_cast<Tick>(std::clamp(t, lo, hi));
}

void
DomainDvfs::applyFrequency(Tick now, Hertz f)
{
    if (f == dom.frequency())
        return;
    dom.setFrequency(f);
    if (tracing)
        freqTrace.push_back({now, f});
    if (telem)
        telem->onFrequencyChange(dom.id(), now, f, dom.voltage());
}

void
DomainDvfs::applyVoltageLevel(int lvl)
{
    level = lvl;
    dom.setVoltage(voltageForLevel(lvl));
}

void
DomainDvfs::requestFrequency(Tick now, Hertz target)
{
    target = std::clamp(target, table.minFrequency(), table.maxFrequency());
    int tlevel = levelForVoltage(table.voltageFor(target));
    if (target == targetFreq && tlevel == targetLevel)
        return;
    ++reconfigs;
    targetFreq = target;
    targetLevel = tlevel;

    if (params.kind == DvfsKind::None) {
        applyVoltageLevel(targetLevel);
        applyFrequency(now, targetFreq);
        active = false;
        return;
    }

    // Injected voltage/frequency mis-order: the rise is applied right
    // now, while the rail is still at the old (lower) voltage; the
    // normal update() path then completes the voltage ramp behind it.
    if (misorder && target > dom.frequency())
        applyFrequency(now, target);

    active = true;
    ramping = false;
    update(now);
}

void
DomainDvfs::update(Tick now)
{
    if (relocking) {
        if (now < relockEnd)
            return;
        relocking = false;
        applyFrequency(relockEnd, relockFreq);
    }
    if (!active)
        return;

    Hertz f = dom.frequency();

    // Phase 1: frequency drops happen before the voltage moves.
    if (f > targetFreq) {
        if (params.pllRelock) {
            relocking = true;
            relockEnd = now + sampleRelock();
            relockFreq = targetFreq;
            if (telem)
                telem->onRelockWindow(dom.id(), now, relockEnd);
            return;
        }
        applyFrequency(now, targetFreq);
        f = targetFreq;
    }

    // Phase 2: voltage ramp toward the target level.
    if (level != targetLevel) {
        if (!ramping) {
            ramping = true;
            nextStepTime = now + params.stepTime;
            return;
        }
        int dir = targetLevel > level ? 1 : -1;
        while (level != targetLevel && now >= nextStepTime) {
            applyVoltageLevel(level + dir);
            if (params.freqTracksVoltage && dir > 0) {
                Hertz track = std::min(
                    targetFreq, table.frequencyFor(dom.voltage()));
                if (track > dom.frequency())
                    applyFrequency(nextStepTime, track);
            }
            nextStepTime += params.stepTime;
        }
        if (level != targetLevel)
            return;
        ramping = false;
    }

    // Phase 3: frequency rise once the voltage is in place.
    if (dom.frequency() < targetFreq) {
        if (params.pllRelock) {
            relocking = true;
            relockEnd = now + sampleRelock();
            relockFreq = targetFreq;
            if (telem)
                telem->onRelockWindow(dom.id(), now, relockEnd);
            return;
        }
        applyFrequency(now, targetFreq);
    }

    active = false;
}

bool
DomainDvfs::executionBlocked(Tick now) const
{
    return relocking && now < relockEnd;
}

Tick
DomainDvfs::estimateTransitionTime(Hertz from, Hertz to) const
{
    if (params.kind == DvfsKind::None || from == to)
        return 0;
    int fromLvl = levelForVoltage(table.voltageFor(from));
    int toLvl = levelForVoltage(table.voltageFor(to));
    Tick t = static_cast<Tick>(std::abs(toLvl - fromLvl)) * params.stepTime;
    if (params.pllRelock)
        t += params.relockMean;
    return t;
}

} // namespace mcd
