/**
 * @file
 * Per-domain dynamic voltage and frequency scaling engines.
 *
 * Two industrial models per the paper (Section 3):
 *
 *  - Transmeta LongRun: 32 voltage steps across the range, 20 us per
 *    step. Every frequency change requires the domain PLL to re-lock;
 *    re-lock time is normally distributed with mean 15 us over a
 *    10-20 us range, and the domain is idle until lock. Lowering
 *    frequency starts immediately (re-lock, then the voltage ramps
 *    down in the background); raising frequency must wait for the
 *    voltage to reach its target before the re-lock begins.
 *
 *  - Intel XScale: 320 voltage steps, 0.1718 us per step; frequency
 *    tracks voltage continuously and the domain executes through the
 *    change (no idle window). Lowering frequency applies immediately
 *    with the voltage trailing down; raising frequency climbs with the
 *    voltage.
 *
 * Traversing the full voltage range takes 640 us (Transmeta) or 55 us
 * (XScale), as in the paper. `timeScale` proportionally shrinks all
 * transition times; the figure benches use it to keep the ratio of
 * reconfiguration cost to (laptop-scale, shortened) program phase
 * length comparable to the paper's setup — see DESIGN.md section 4.
 */

#ifndef MCD_CLOCK_DVFS_HH
#define MCD_CLOCK_DVFS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clock/clock_domain.hh"
#include "clock/operating_points.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace mcd {

namespace obs { class Telemetry; }

/** Which scaling technology a configuration models. */
enum class DvfsKind : std::uint8_t {
    None,       //!< no transition cost: requests apply instantly
    Transmeta,  //!< LongRun: stepped voltage + PLL re-lock idle window
    XScale,     //!< smooth ramp, executes through the change
};

const char *dvfsKindName(DvfsKind kind);

/**
 * Parse a model name back to its kind (round-trip of dvfsKindName,
 * case-insensitive). Returns nullopt for unknown names, so CLI/env
 * selection can reject typos instead of silently defaulting.
 */
std::optional<DvfsKind> dvfsKindFromName(std::string_view name);

/**
 * Every valid model name joined ", " ("none, Transmeta, XScale"), so
 * rejection messages can enumerate the choices instead of merely
 * echoing the bad input.
 */
std::string dvfsKindNames();

/** Transition-timing parameters for one DVFS technology. */
struct DvfsParams
{
    DvfsKind kind = DvfsKind::None;
    int stepsFullRange = 1;     //!< voltage steps across [vMin, vMax]
    Tick stepTime = 0;          //!< time per voltage step (ps)
    bool freqTracksVoltage = false; //!< XScale-style continuous ramp
    bool pllRelock = false;     //!< idle re-lock window on freq change
    Tick relockMin = 0;
    Tick relockMax = 0;
    Tick relockMean = 0;
    double relockSigma = 0.0;   //!< ps

    /** Paper's Transmeta LongRun parameters. */
    static DvfsParams transmeta(double time_scale = 1.0);
    /** Paper's Intel XScale parameters. */
    static DvfsParams xscale(double time_scale = 1.0);
    /** Instant (cost-free) scaling, for tests and static configs. */
    static DvfsParams none();

    /** Build from a kind tag. */
    static DvfsParams forKind(DvfsKind kind, double time_scale = 1.0);
};

/**
 * Drives one domain's (frequency, voltage) trajectory.
 *
 * The owner calls update() at every domain clock edge (cheap when no
 * transition is active) and may query executionBlocked() to model the
 * PLL re-lock idle window.
 */
class DomainDvfs
{
  public:
    DomainDvfs(const DvfsParams &params, const DvfsTable &table,
               ClockDomain &domain, std::uint64_t seed);

    /** Ask for a new target frequency at time @p now. */
    void requestFrequency(Tick now, Hertz target);

    /** Advance the transition state machine to time @p now. */
    void update(Tick now);

    /** True while the PLL is re-locking (domain does no work). */
    bool executionBlocked(Tick now) const;

    /** nextEventTime() value when no transition work is pending. */
    static constexpr Tick never = ~Tick{0};

    /**
     * Earliest tick at which this engine has state-machine work to do
     * (PLL re-lock expiry or the next voltage step), or @ref never
     * when idle. The run loop's edge actors latch this so update() is
     * called only at edges where it can make progress, instead of at
     * every edge; the update(now) contract is unchanged — servicing
     * at the first edge at-or-after the returned tick reproduces the
     * legacy call-every-edge trajectory exactly, because update()
     * anchors its effects to the recorded event times (relockEnd, the
     * step schedule), not to the calling edge.
     *
     * Invariant relied on (see update()): after any update() or
     * requestFrequency() call returns, an active transition is either
     * re-locking or ramping, so those two times cover every pending
     * event. The 0 fallback (service at the very next edge) keeps a
     * hypothetical third state safe rather than silently stalled.
     */
    Tick
    nextEventTime() const
    {
        if (relocking)
            return relockEnd;
        if (active)
            return ramping ? nextStepTime : 0;
        return never;
    }

    /** True while a transition is in progress. */
    bool transitioning() const { return active; }

    Hertz targetFrequency() const { return targetFreq; }

    /**
     * Estimated wall time to move between two frequencies, used by
     * the offline clustering phase when computing transition lead
     * times and reconfiguration overheads.
     */
    Tick estimateTransitionTime(Hertz from, Hertz to) const;

    /** Number of requestFrequency() calls that changed the target. */
    std::uint64_t reconfigurations() const { return reconfigs; }

    /**
     * Attach the run's telemetry context: frequency changes and PLL
     * re-lock windows are reported through its hooks. The production
     * consumer of frequency series (Figure 8, RunResult::freqTraces)
     * reads the telemetry sampler; the legacy in-engine trace below
     * remains as the independent ground truth the telemetry tests
     * compare against.
     */
    void attachTelemetry(obs::Telemetry *t) { telem = t; }

    /**
     * Fault injection (FaultKind::VfMisorder): apply frequency rises
     * immediately at the request tick, before the voltage ramp — the
     * exact hazard the voltage_leads_freq invariant exists to catch.
     * Deterministic: the breach lands at the request tick itself.
     */
    void injectVfMisorder() { misorder = true; }

    /** Enable recording of (time, frequency) trace points. */
    void enableTrace() { tracing = true; }
    const std::vector<FreqTracePoint> &trace() const { return freqTrace; }

    /** Current voltage level index (test hook). */
    int voltageLevel() const { return level; }

  private:
    void applyFrequency(Tick now, Hertz f);
    void applyVoltageLevel(int lvl);
    int levelForVoltage(Volt v) const;
    Volt voltageForLevel(int lvl) const;
    Tick sampleRelock();

    const DvfsParams params;
    const DvfsTable &table;
    ClockDomain &dom;
    obs::Telemetry *telem = nullptr;
    Rng rng;

    bool active = false;
    bool tracing = false;
    bool misorder = false;  //!< injected voltage/frequency mis-order
    Hertz targetFreq;
    int level;              //!< current voltage level [0, stepsFullRange]
    int targetLevel;
    bool ramping = false;   //!< voltage ramp in progress
    Tick nextStepTime = 0;

    // PLL re-lock window (Transmeta).
    bool relocking = false;
    Tick relockEnd = 0;
    Hertz relockFreq = 0.0; //!< frequency applied when lock completes

    std::uint64_t reconfigs = 0;
    std::vector<FreqTracePoint> freqTrace;
};

} // namespace mcd

#endif // MCD_CLOCK_DVFS_HH
