/**
 * @file
 * Inter-domain synchronization: the T_s visibility rule and the
 * queue/channel primitives used at every clock-domain boundary.
 *
 * Following Sjogren & Myers' arbitration circuits as adopted by the
 * paper (Section 2.2): a value written in the source domain at time
 * t_w can be latched at a destination clock edge t_e only if
 * t_e - t_w >= T_s, where T_s is 30% of the period of the highest
 * frequency (0.3 ns at 1 GHz). If the edge arrives too soon, the value
 * is seen one destination cycle later. Within a single domain the rule
 * degenerates to ordinary pipelining: visible at any strictly later
 * edge. This is how the *baseline* (singly clocked) configuration
 * naturally loses all synchronization overhead.
 */

#ifndef MCD_CLOCK_SYNC_HH
#define MCD_CLOCK_SYNC_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/ring_buffer.hh"
#include "common/types.hh"

namespace mcd {

/** Paper value: T_s as a fraction of the fastest clock period. */
inline constexpr double defaultSyncFraction = 0.3;

/**
 * The synchronization rule shared by all boundary crossings.
 */
class SyncRule
{
  public:
    /** Default: same-domain (no synchronization cost). */
    SyncRule() : crossDomain(false), syncTime(0) {}

    /**
     * @param cross_domain false collapses the rule to plain next-edge
     *        visibility (singly clocked configuration)
     * @param sync_time_ps T_s in picoseconds
     */
    SyncRule(bool cross_domain, double sync_time_ps)
        : crossDomain(cross_domain),
          syncTime(static_cast<Tick>(sync_time_ps))
    {}

    /** Build the paper's default rule for a given max frequency. */
    static SyncRule
    forMaxFrequency(bool cross_domain, Hertz f_max,
                    double fraction = defaultSyncFraction)
    {
        return SyncRule(cross_domain, fraction * periodPs(f_max));
    }

    /** Can a value written at @p wrote be consumed at edge @p edge? */
    bool
    visible(Tick wrote, Tick edge) const
    {
        if (edge <= wrote)
            return false;
        if (!crossDomain)
            return true;
        return edge - wrote >= syncTime;
    }

    /** Earliest time at which a consumer edge may observe the value. */
    Tick
    earliestVisible(Tick wrote) const
    {
        return crossDomain ? wrote + syncTime : wrote + 1;
    }

    bool isCrossDomain() const { return crossDomain; }
    Tick syncTimePs() const { return syncTime; }

  private:
    bool crossDomain;
    Tick syncTime;
};

/**
 * A FIFO channel crossing (or not) a domain boundary.
 *
 * Producer side calls push() with its current edge time; consumer
 * side, at its own edges, observes only entries the SyncRule makes
 * visible. Capacity enforcement is left to the users (the hardware
 * queues use credits; see cpu/).
 */
template <typename T>
class SyncChannel
{
  public:
    explicit SyncChannel(SyncRule rule_) : rule(rule_) {}

    /** Replace the rule (when rebinding domains between configs). */
    void setRule(SyncRule rule_) { rule = rule_; }
    const SyncRule &syncRule() const { return rule; }

    void
    push(T value, Tick wrote)
    {
        entries.push_back({std::move(value), wrote});
    }

    /** Total entries, visible or not. */
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Is the head entry consumable at edge time @p edge? */
    bool
    frontVisible(Tick edge) const
    {
        return !entries.empty() && rule.visible(entries.front().wrote, edge);
    }

    /** Number of leading entries consumable at @p edge. */
    std::size_t
    visibleCount(Tick edge) const
    {
        std::size_t n = 0;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (!rule.visible(entries[i].wrote, edge))
                break;
            ++n;
        }
        return n;
    }

    const T &front() const { return entries.front().value; }
    T &front() { return entries.front().value; }

    void pop() { entries.pop_front(); }

    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        T value;
        Tick wrote;
    };

    SyncRule rule;
    RingDeque<Entry> entries;
};

/**
 * A hardware queue crossing a domain boundary: the producer writes
 * entries stamped with its edge time, the consumer — at its own edges
 * — may act only on entries the SyncRule makes visible, and every
 * blocked probe is counted at the port so synchronization-stall
 * statistics fall out of the boundary layer instead of being
 * hand-threaded through stage code.
 *
 * Unlike SyncChannel (a strict FIFO), SyncPort exposes indexed
 * consumer-side access because the hardware structures it models scan
 * out of order: issue queues pick any ready entry, and the LSQ walks
 * with store-forwarding look-back. The sequence container is a
 * template parameter so each structure keeps the layout its scan
 * pattern wants (vector + erase-compaction for the issue queues,
 * deque + head-pop for the LSQ).
 */
template <typename T, template <typename...> class Seq = std::vector>
class SyncPort
{
  public:
    struct Entry
    {
        T value;
        Tick wrote;     //!< producer edge time of the write
    };

    explicit SyncPort(SyncRule rule_ = SyncRule()) : rule(rule_) {}

    void setRule(SyncRule rule_) { rule = rule_; }
    const SyncRule &syncRule() const { return rule; }

    /** Producer side: enqueue @p value at producer edge @p wrote. */
    void push(T value, Tick wrote) { q.push_back({value, wrote}); }

    /** Pre-size the backing container (bounded hardware queues). */
    void reserve(std::size_t n) { q.reserve(n); }

    /** Backing-container reallocations (RingDeque-backed ports). */
    std::uint64_t containerGrows() const { return q.grows(); }

    std::size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }

    Entry &operator[](std::size_t i) { return q[i]; }
    const Entry &operator[](std::size_t i) const { return q[i]; }

    Entry &front() { return q.front(); }
    const Entry &front() const { return q.front(); }

    /**
     * Consumer side: may @p e be acted on at consumer edge @p now?
     * A blocked probe (entry present but not yet synchronized) is
     * counted; the consumer decides whether to skip the entry or
     * stall the whole scan.
     */
    bool
    probe(const Entry &e, Tick now)
    {
        if (rule.visible(e.wrote, now))
            return true;
        ++waitCount;
        return false;
    }

    /** Visibility test without wait accounting (test hook). */
    bool peek(const Entry &e, Tick now) const
    { return rule.visible(e.wrote, now); }

    /** Consumer dequeues the head (deque-backed ports). */
    void popFront() { q.pop_front(); }

    /** Drop every entry satisfying @p pred (vector-backed ports). */
    template <typename Pred>
    void
    eraseIf(Pred pred)
    {
        q.erase(std::remove_if(q.begin(), q.end(), pred), q.end());
    }

    auto begin() { return q.begin(); }
    auto end() { return q.end(); }
    auto begin() const { return q.begin(); }
    auto end() const { return q.end(); }

    /** Blocked probes accumulated at this boundary. */
    std::uint64_t waits() const { return waitCount; }

  private:
    SyncRule rule;
    Seq<Entry> q;
    std::uint64_t waitCount = 0;
};

/**
 * A single cross-domain ready signal (e.g. the generated address an
 * LSQ entry waits for from the integer domain): asserted at a source
 * edge time, consumable once the SyncRule admits it. Probes of an
 * asserted-but-not-yet-visible signal are counted; probes of an
 * unasserted signal are not (there is nothing in flight to wait on).
 */
class SyncSignal
{
  public:
    explicit SyncSignal(SyncRule rule_ = SyncRule()) : rule(rule_) {}

    void setRule(SyncRule rule_) { rule = rule_; }
    const SyncRule &syncRule() const { return rule; }

    bool
    probe(bool asserted, Tick wrote, Tick now)
    {
        if (!asserted)
            return false;
        if (rule.visible(wrote, now))
            return true;
        ++waitCount;
        return false;
    }

    std::uint64_t waits() const { return waitCount; }

  private:
    SyncRule rule;
    std::uint64_t waitCount = 0;
};

/**
 * The many-source completion bus into one consumer domain: signals
 * tagged with their producing domain, each crossing under that
 * (source, consumer) pair's rule. The ROB's commit gate is the
 * canonical instance (any back-end domain -> front end); probeQuiet
 * serves probes that must not count as stalls (the fetch stage
 * watching a mispredicted branch resolve is a spectator, not a
 * stalled consumer).
 */
class SyncSignalGate
{
  public:
    SyncSignalGate() = default;

    void
    setRule(Domain from, SyncRule rule_)
    {
        rules[domainIndex(from)] = rule_;
    }

    const SyncRule &rule(Domain from) const
    { return rules[domainIndex(from)]; }

    /** Counting probe: a blocked signal stalls the consumer. */
    bool
    probe(Domain from, Tick wrote, Tick now)
    {
        if (rules[domainIndex(from)].visible(wrote, now))
            return true;
        ++waitCount;
        return false;
    }

    /** Non-counting probe for spectators. */
    bool
    probeQuiet(Domain from, Tick wrote, Tick now) const
    {
        return rules[domainIndex(from)].visible(wrote, now);
    }

    std::uint64_t waits() const { return waitCount; }

  private:
    std::array<SyncRule, numDomains> rules{};
    std::uint64_t waitCount = 0;
};

/**
 * A saturating credit counter whose returns cross a domain boundary.
 *
 * Models the paper's conservative full-flag generation: the producer
 * (front end) only dispatches against credits, and a credit freed in
 * the consumer domain becomes usable only after synchronization.
 */
class CreditReturnChannel
{
  public:
    CreditReturnChannel(SyncRule rule_, int initial_credits)
        : rule(rule_), available(initial_credits)
    {}

    void setRule(SyncRule rule_) { rule = rule_; }

    /** Pre-size the in-flight ring (at most initial_credits deep). */
    void reserve(std::size_t n) { inFlight.reserve(n); }

    /** In-flight ring reallocations (0 when reserved correctly). */
    std::uint64_t grows() const { return inFlight.grows(); }

    /** Credits usable by the producer at its edge @p edge. */
    int
    credits(Tick edge)
    {
        drain(edge);
        return available;
    }

    /** Producer consumes one credit. */
    void
    take()
    {
        --available;
    }

    /** Consumer frees one credit at its edge time @p freed. */
    void
    give(Tick freed)
    {
        inFlight.push_back(freed);
    }

  private:
    void
    drain(Tick edge)
    {
        while (!inFlight.empty() && rule.visible(inFlight.front(), edge)) {
            inFlight.pop_front();
            ++available;
        }
    }

    SyncRule rule;
    int available;
    RingDeque<Tick> inFlight;
};

} // namespace mcd

#endif // MCD_CLOCK_SYNC_HH
