/**
 * @file
 * Inter-domain synchronization: the T_s visibility rule and the
 * queue/channel primitives used at every clock-domain boundary.
 *
 * Following Sjogren & Myers' arbitration circuits as adopted by the
 * paper (Section 2.2): a value written in the source domain at time
 * t_w can be latched at a destination clock edge t_e only if
 * t_e - t_w >= T_s, where T_s is 30% of the period of the highest
 * frequency (0.3 ns at 1 GHz). If the edge arrives too soon, the value
 * is seen one destination cycle later. Within a single domain the rule
 * degenerates to ordinary pipelining: visible at any strictly later
 * edge. This is how the *baseline* (singly clocked) configuration
 * naturally loses all synchronization overhead.
 */

#ifndef MCD_CLOCK_SYNC_HH
#define MCD_CLOCK_SYNC_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace mcd {

/** Paper value: T_s as a fraction of the fastest clock period. */
inline constexpr double defaultSyncFraction = 0.3;

/**
 * The synchronization rule shared by all boundary crossings.
 */
class SyncRule
{
  public:
    /** Default: same-domain (no synchronization cost). */
    SyncRule() : crossDomain(false), syncTime(0) {}

    /**
     * @param cross_domain false collapses the rule to plain next-edge
     *        visibility (singly clocked configuration)
     * @param sync_time_ps T_s in picoseconds
     */
    SyncRule(bool cross_domain, double sync_time_ps)
        : crossDomain(cross_domain),
          syncTime(static_cast<Tick>(sync_time_ps))
    {}

    /** Build the paper's default rule for a given max frequency. */
    static SyncRule
    forMaxFrequency(bool cross_domain, Hertz f_max,
                    double fraction = defaultSyncFraction)
    {
        return SyncRule(cross_domain, fraction * periodPs(f_max));
    }

    /** Can a value written at @p wrote be consumed at edge @p edge? */
    bool
    visible(Tick wrote, Tick edge) const
    {
        if (edge <= wrote)
            return false;
        if (!crossDomain)
            return true;
        return edge - wrote >= syncTime;
    }

    /** Earliest time at which a consumer edge may observe the value. */
    Tick
    earliestVisible(Tick wrote) const
    {
        return crossDomain ? wrote + syncTime : wrote + 1;
    }

    bool isCrossDomain() const { return crossDomain; }
    Tick syncTimePs() const { return syncTime; }

  private:
    bool crossDomain;
    Tick syncTime;
};

/**
 * A FIFO channel crossing (or not) a domain boundary.
 *
 * Producer side calls push() with its current edge time; consumer
 * side, at its own edges, observes only entries the SyncRule makes
 * visible. Capacity enforcement is left to the users (the hardware
 * queues use credits; see cpu/).
 */
template <typename T>
class SyncChannel
{
  public:
    explicit SyncChannel(SyncRule rule_) : rule(rule_) {}

    /** Replace the rule (when rebinding domains between configs). */
    void setRule(SyncRule rule_) { rule = rule_; }
    const SyncRule &syncRule() const { return rule; }

    void
    push(T value, Tick wrote)
    {
        entries.push_back({std::move(value), wrote});
    }

    /** Total entries, visible or not. */
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Is the head entry consumable at edge time @p edge? */
    bool
    frontVisible(Tick edge) const
    {
        return !entries.empty() && rule.visible(entries.front().wrote, edge);
    }

    /** Number of leading entries consumable at @p edge. */
    std::size_t
    visibleCount(Tick edge) const
    {
        std::size_t n = 0;
        for (const auto &e : entries) {
            if (!rule.visible(e.wrote, edge))
                break;
            ++n;
        }
        return n;
    }

    const T &front() const { return entries.front().value; }
    T &front() { return entries.front().value; }

    void pop() { entries.pop_front(); }

    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        T value;
        Tick wrote;
    };

    SyncRule rule;
    std::deque<Entry> entries;
};

/**
 * A saturating credit counter whose returns cross a domain boundary.
 *
 * Models the paper's conservative full-flag generation: the producer
 * (front end) only dispatches against credits, and a credit freed in
 * the consumer domain becomes usable only after synchronization.
 */
class CreditReturnChannel
{
  public:
    CreditReturnChannel(SyncRule rule_, int initial_credits)
        : rule(rule_), available(initial_credits)
    {}

    void setRule(SyncRule rule_) { rule = rule_; }

    /** Credits usable by the producer at its edge @p edge. */
    int
    credits(Tick edge)
    {
        drain(edge);
        return available;
    }

    /** Producer consumes one credit. */
    void
    take()
    {
        --available;
    }

    /** Consumer frees one credit at its edge time @p freed. */
    void
    give(Tick freed)
    {
        inFlight.push_back(freed);
    }

  private:
    void
    drain(Tick edge)
    {
        while (!inFlight.empty() && rule.visible(inFlight.front(), edge)) {
            inFlight.pop_front();
            ++available;
        }
    }

    SyncRule rule;
    int available;
    std::deque<Tick> inFlight;
};

} // namespace mcd

#endif // MCD_CLOCK_SYNC_HH
